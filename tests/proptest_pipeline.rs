//! Property tests for the unified verification pipeline: for random series
//! and deliberately messy candidate sets (duplicated, unsorted, with
//! adjacent overlapping windows), `Pipeline::verify_into` must answer
//! exactly like naive per-candidate verification on **every** store backend;
//! every method on every backend must agree with a brute-force scan; and a
//! coalesced run on the block-cached store must cost exactly one physical
//! read per uncached block.

use std::sync::atomic::{AtomicU64, Ordering};

use proptest::collection::vec as pvec;
use proptest::prelude::*;

use ts_core::exec::Executor;
use ts_core::pipeline::{CandidateSet, Pipeline, VerifyKernel, VerifyOptions};
use ts_core::verify::Verifier;
use ts_storage::{
    plan_verify_options, write_series, BlockCacheConfig, BlockCachedSeries, DiskSeries,
    InMemorySeries, MmapSeries, PerSubsequenceNormalized, Result as StorageResult,
};
use twin_search::{are_twins, Engine, EngineConfig, Method, Normalization, SeriesStore, StoreKind};

static TEMP_COUNTER: AtomicU64 = AtomicU64::new(0);

/// A temporary series file, removed on drop.
struct TempSeries {
    path: std::path::PathBuf,
}

impl TempSeries {
    fn write(values: &[f64]) -> Self {
        let mut path = std::env::temp_dir();
        path.push(format!(
            "twin_pipeline_it_{}_{}.bin",
            std::process::id(),
            TEMP_COUNTER.fetch_add(1, Ordering::Relaxed)
        ));
        write_series(&path, values).unwrap();
        Self { path }
    }
}

impl Drop for TempSeries {
    fn drop(&mut self) {
        let _ = std::fs::remove_file(&self.path);
    }
}

/// A strategy producing a series of 200–500 smooth-ish values (random walk
/// steps bounded to keep Chebyshev thresholds meaningful).
fn series_strategy() -> impl Strategy<Value = Vec<f64>> {
    (200usize..500, pvec(-1.0_f64..1.0, 500)).prop_map(|(n, steps)| {
        let mut x = 0.0;
        steps
            .into_iter()
            .take(n)
            .map(|s| {
                x += s;
                x
            })
            .collect()
    })
}

/// Naive reference: sort + dedup, then one window read and one scalar
/// Chebyshev check per candidate.
fn naive_verify(values: &[f64], query: &[f64], epsilon: f64, candidates: &[u32]) -> Vec<usize> {
    let mut sorted: Vec<u32> = candidates.to_vec();
    sorted.sort_unstable();
    sorted.dedup();
    let verifier = Verifier::new(query);
    sorted
        .into_iter()
        .map(|p| p as usize)
        .filter(|&p| verifier.is_twin(&values[p..p + query.len()], epsilon))
        .collect()
}

/// Runs the pipeline over `store` and returns the accepted positions.
fn pipeline_verify<S: SeriesStore>(
    store: &S,
    query: &[f64],
    epsilon: f64,
    candidates: &[u32],
    kernel: VerifyKernel,
) -> StorageResult<(Vec<usize>, usize)> {
    let pipeline = Pipeline::new(query, epsilon).with_kernel(kernel);
    let mut set = CandidateSet::new();
    set.extend_from_slice(candidates);
    let mut out = Vec::new();
    let report = pipeline.verify_into(
        &mut set,
        |start, buf| store.read_range_into(start, buf),
        VerifyOptions::exhaustive(false).with_coalesce(store.range_reads_are_slices()),
        &mut out,
    )?;
    Ok((out, report.runs))
}

/// Naive reference for the per-subsequence regime: one normalised
/// window-sized read through the store per candidate, then a scalar check.
fn naive_normalized_verify<S: SeriesStore>(
    store: &PerSubsequenceNormalized<S>,
    query: &[f64],
    epsilon: f64,
    candidates: &[u32],
) -> Vec<usize> {
    let mut sorted: Vec<u32> = candidates.to_vec();
    sorted.sort_unstable();
    sorted.dedup();
    let verifier = Verifier::new(query);
    let mut buf = vec![0.0; query.len()];
    sorted
        .into_iter()
        .map(|p| p as usize)
        .filter(|&p| {
            store.read_into(p, &mut buf).unwrap();
            verifier.is_twin(&buf, epsilon)
        })
        .collect()
}

/// The shipped path for the per-subsequence regime: coalesced **raw** run
/// reads with in-pipeline rolling normalisation.
fn rolling_pipeline_verify<S: SeriesStore>(
    store: &PerSubsequenceNormalized<S>,
    query: &[f64],
    epsilon: f64,
    candidates: &[u32],
    kernel: VerifyKernel,
) -> StorageResult<(Vec<usize>, usize, usize)> {
    let pipeline = Pipeline::new(query, epsilon).with_kernel(kernel);
    let mut set = CandidateSet::new();
    set.extend_from_slice(candidates);
    let mut out = Vec::new();
    let options = plan_verify_options(store, VerifyOptions::exhaustive(false));
    assert!(options.coalesce && options.rolling_norm);
    let report = pipeline.verify_into(
        &mut set,
        |start, buf| store.read_raw_range_into(start, buf),
        options,
        &mut out,
    )?;
    Ok((out, report.runs, report.verified))
}

proptest! {
    #![proptest_config(ProptestConfig::with_cases(12))]

    /// The tentpole equivalence: the run-coalescing pipeline answers exactly
    /// like per-candidate verification on every backend, for candidate sets
    /// containing duplicates, unsorted positions and adjacent overlapping
    /// windows.
    #[test]
    fn pipeline_matches_naive_on_every_backend(
        values in series_strategy(),
        raw_candidates in pvec(0usize..100_000, 1..80),
        len_frac in 0.05_f64..0.3,
        query_frac in 0.0_f64..1.0,
        eps in 0.05_f64..1.5,
        kernel_pick in 0usize..3,
    ) {
        let n = values.len();
        let len = ((n as f64 * len_frac) as usize).clamp(4, n / 2);
        let max_start = n - len;
        // Duplicates arise from the modulo fold; adjacent overlapping
        // windows are added explicitly next to every candidate.
        let mut candidates: Vec<u32> = raw_candidates
            .iter()
            .map(|&c| (c % (max_start + 1)) as u32)
            .collect();
        for i in 0..candidates.len() {
            let next = (candidates[i] as usize + 1).min(max_start) as u32;
            candidates.push(next);
        }
        let q_start = (query_frac * max_start as f64) as usize;
        let query = values[q_start..q_start + len].to_vec();
        let kernel = VerifyKernel::ALL[kernel_pick];

        let expected = naive_verify(&values, &query, eps, &candidates);

        let mem = InMemorySeries::new(values.clone()).unwrap();
        let (got, runs) = pipeline_verify(&mem, &query, eps, &candidates, kernel).unwrap();
        prop_assert_eq!(&got, &expected, "memory, kernel {:?}", kernel);
        // Dedup happened: never more runs than distinct candidates.
        let mut distinct = candidates.clone();
        distinct.sort_unstable();
        distinct.dedup();
        prop_assert!(runs <= distinct.len());

        let file = TempSeries::write(&values);
        let disk = DiskSeries::open(&file.path).unwrap();
        prop_assert_eq!(&pipeline_verify(&disk, &query, eps, &candidates, kernel).unwrap().0, &expected, "disk");
        let cached = BlockCachedSeries::open(&file.path).unwrap();
        prop_assert_eq!(&pipeline_verify(&cached, &query, eps, &candidates, kernel).unwrap().0, &expected, "disk-cached");
        let mapped = MmapSeries::open(&file.path).unwrap();
        prop_assert_eq!(&pipeline_verify(&mapped, &query, eps, &candidates, kernel).unwrap().0, &expected, "mmap");
    }

    /// Rolling-statistics equivalence (the Fig. 6 regime): verifying through
    /// a `PerSubsequenceNormalized` store with coalesced raw run reads and
    /// in-pipeline rolling normalisation answers exactly like naive
    /// per-candidate reads of store-normalised windows — on every file
    /// backend and with every kernel, including constant (std = 0) windows.
    #[test]
    fn rolling_normalisation_matches_per_window_reads_on_every_backend(
        values in series_strategy(),
        raw_candidates in pvec(0usize..100_000, 1..60),
        len_frac in 0.05_f64..0.25,
        query_frac in 0.0_f64..1.0,
        eps in 0.05_f64..1.5,
        const_frac in 0.0_f64..1.0,
    ) {
        let mut values = values;
        let n = values.len();
        // A constant stretch exercises the std = 0 windows of both paths.
        let c_start = (const_frac * (n - 40) as f64) as usize;
        for v in &mut values[c_start..c_start + 40] {
            *v = 3.25;
        }
        let len = ((n as f64 * len_frac) as usize).clamp(4, n / 2);
        let max_start = n - len;
        let mut candidates: Vec<u32> = raw_candidates
            .iter()
            .map(|&c| (c % (max_start + 1)) as u32)
            .collect();
        for i in 0..candidates.len() {
            let next = (candidates[i] as usize + 1).min(max_start) as u32;
            candidates.push(next);
        }
        // Candidates overlapping the constant stretch, always.
        for p in c_start.saturating_sub(2)..(c_start + 4).min(max_start + 1) {
            candidates.push(p as u32);
        }
        let q_start = (query_frac * max_start as f64) as usize;
        let query = ts_core::normalize::znormalize(&values[q_start..q_start + len]);

        let mem = PerSubsequenceNormalized::new(InMemorySeries::new(values.clone()).unwrap());
        let expected = naive_normalized_verify(&mem, &query, eps, &candidates);

        let file = TempSeries::write(&values);
        for kernel in VerifyKernel::ALL {
            let (got, runs, verified) =
                rolling_pipeline_verify(&mem, &query, eps, &candidates, kernel).unwrap();
            prop_assert_eq!(&got, &expected, "memory, kernel {:?}", kernel);
            // The adjacent pairs injected above guarantee coalescing bites.
            prop_assert!(runs < verified, "runs {} vs verified {}", runs, verified);

            let disk = PerSubsequenceNormalized::new(DiskSeries::open(&file.path).unwrap());
            prop_assert_eq!(
                &rolling_pipeline_verify(&disk, &query, eps, &candidates, kernel).unwrap().0,
                &expected, "disk, kernel {:?}", kernel
            );
            let cached = PerSubsequenceNormalized::new(BlockCachedSeries::open(&file.path).unwrap());
            prop_assert_eq!(
                &rolling_pipeline_verify(&cached, &query, eps, &candidates, kernel).unwrap().0,
                &expected, "disk-cached, kernel {:?}", kernel
            );
            let mapped = PerSubsequenceNormalized::new(MmapSeries::open(&file.path).unwrap());
            prop_assert_eq!(
                &rolling_pipeline_verify(&mapped, &query, eps, &candidates, kernel).unwrap().0,
                &expected, "mmap, kernel {:?}", kernel
            );
        }
    }

    /// Prefetched (double-buffered) verification is byte-identical to the
    /// sequential path: same matches, same counters, on raw and
    /// per-subsequence-normalised stores alike.
    #[test]
    fn prefetched_verification_matches_sequential(
        values in series_strategy(),
        raw_candidates in pvec(0usize..100_000, 1..60),
        len_frac in 0.05_f64..0.25,
        query_frac in 0.0_f64..1.0,
        eps in 0.05_f64..1.5,
        kernel_pick in 0usize..3,
    ) {
        let n = values.len();
        let len = ((n as f64 * len_frac) as usize).clamp(4, n / 2);
        let max_start = n - len;
        let candidates: Vec<u32> = raw_candidates
            .iter()
            .map(|&c| (c % (max_start + 1)) as u32)
            .collect();
        let q_start = (query_frac * max_start as f64) as usize;
        let query = values[q_start..q_start + len].to_vec();
        let kernel = VerifyKernel::ALL[kernel_pick];
        // `exact` bypasses the core clamp so the double-buffered reader
        // thread actually runs on a single-core container.
        let pool = Executor::exact(2);

        let file = TempSeries::write(&values);
        let store = DiskSeries::open(&file.path).unwrap();
        let pipeline = Pipeline::new(&query, eps).with_kernel(kernel);
        let options = plan_verify_options(&store, VerifyOptions::exhaustive(false))
            .with_max_run_span(64);

        let mut set = CandidateSet::new();
        set.extend_from_slice(&candidates);
        let mut sequential = Vec::new();
        let seq_report = pipeline
            .verify_into(
                &mut set,
                |start, buf| store.read_raw_range_into(start, buf),
                options,
                &mut sequential,
            )
            .unwrap();

        let mut set = CandidateSet::new();
        set.extend_from_slice(&candidates);
        let mut prefetched = Vec::new();
        let pre_report = pipeline
            .verify_prefetched(
                &mut set,
                |start, buf| store.read_raw_range_into(start, buf),
                &pool,
                options,
                &mut prefetched,
            )
            .unwrap();
        prop_assert_eq!(&prefetched, &sequential);
        prop_assert_eq!(pre_report.verified, seq_report.verified);
        prop_assert_eq!(pre_report.matches, seq_report.matches);
        prop_assert_eq!(pre_report.runs, seq_report.runs);

        // And through the normalising wrapper (rolling + prefetch compose).
        let norm = PerSubsequenceNormalized::new(store);
        let norm_query = ts_core::normalize::znormalize(&query);
        let norm_pipeline = Pipeline::new(&norm_query, eps).with_kernel(kernel);
        let norm_options = plan_verify_options(&norm, VerifyOptions::exhaustive(false))
            .with_max_run_span(64);
        let mut set = CandidateSet::new();
        set.extend_from_slice(&candidates);
        let mut norm_sequential = Vec::new();
        norm_pipeline
            .verify_into(
                &mut set,
                |start, buf| norm.read_raw_range_into(start, buf),
                norm_options,
                &mut norm_sequential,
            )
            .unwrap();
        let mut set = CandidateSet::new();
        set.extend_from_slice(&candidates);
        let mut norm_prefetched = Vec::new();
        norm_pipeline
            .verify_prefetched(
                &mut set,
                |start, buf| norm.read_raw_range_into(start, buf),
                &pool,
                norm_options,
                &mut norm_prefetched,
            )
            .unwrap();
        prop_assert_eq!(&norm_prefetched, &norm_sequential);
    }

    /// Every method on every store kind agrees with a brute-force scan of
    /// the raw values — the end-to-end byte-identical-results guarantee.
    #[test]
    fn every_method_matches_brute_force_on_every_store(
        values in series_strategy(),
        query_frac in 0.0_f64..1.0,
        eps in 0.1_f64..1.0,
    ) {
        let len = (values.len() / 8).clamp(8, 64);
        let max_start = values.len() - len;
        let q_start = (query_frac * max_start as f64) as usize;
        let query = values[q_start..q_start + len].to_vec();
        let expected: Vec<usize> = (0..=max_start)
            .filter(|&p| are_twins(&query, &values[p..p + len], eps))
            .collect();
        for method in Method::ALL {
            for kind in StoreKind::ALL {
                let engine = Engine::build(
                    &values,
                    EngineConfig::new(method, len)
                        .with_normalization(Normalization::None)
                        .with_store(kind),
                )
                .unwrap();
                prop_assert_eq!(
                    &engine.search(&query, eps).unwrap(),
                    &expected,
                    "{} on {}", method, kind
                );
            }
        }
    }
}

/// A coalesced run on the block-cached store costs exactly one physical read
/// per block it covers (cold cache), not one per candidate window.
#[test]
fn coalesced_run_costs_one_physical_read_per_uncached_block() {
    let block_values = 256usize;
    let values: Vec<f64> = (0..4096).map(|i| f64::from(i % 97) * 0.1).collect();
    let file = TempSeries::write(&values);
    let store = BlockCachedSeries::open_with(
        &file.path,
        BlockCacheConfig::new()
            .with_block_values(block_values)
            .with_capacity_blocks(64),
    )
    .unwrap();

    let len = 64usize;
    let first = 500usize;
    let last = 539usize;
    let query = values[first..first + len].to_vec();
    let pipeline = Pipeline::new(&query, f64::INFINITY);
    let mut set = CandidateSet::new();
    for p in first..=last {
        set.push(p as u32);
    }
    let mut out = Vec::new();
    let before = store.physical_reads();
    let report = pipeline
        .verify_into(
            &mut set,
            |start, buf| store.read_range_into(start, buf),
            VerifyOptions::exhaustive(false),
            &mut out,
        )
        .unwrap();
    let span = last + len - first;
    let expected_blocks = (last + len - 1) / block_values - first / block_values + 1;
    assert_eq!(report.runs, 1, "overlapping windows coalesce into one run");
    assert_eq!(report.verified, last - first + 1);
    assert_eq!(out.len(), last - first + 1, "ε = ∞ accepts everything");
    assert_eq!(
        store.physical_reads() - before,
        expected_blocks as u64,
        "one {span}-value run over {block_values}-value blocks"
    );

    // Re-verifying the same run is served entirely from the cache.
    let mut set = CandidateSet::new();
    for p in first..=last {
        set.push(p as u32);
    }
    let before = store.physical_reads();
    out.clear();
    pipeline
        .verify_into(
            &mut set,
            |start, buf| store.read_range_into(start, buf),
            VerifyOptions::exhaustive(false),
            &mut out,
        )
        .unwrap();
    assert_eq!(
        store.physical_reads(),
        before,
        "warm cache: zero physical reads"
    );
}

/// The acceptance criterion for rolling normalisation: a disk-backed
/// `PerSubsequenceNormalized` store answers a coalesced run through the
/// raw-range path at exactly one physical read per uncached block —
/// normalisation no longer forces one read per candidate window.
#[test]
fn normalized_coalesced_run_costs_one_physical_read_per_uncached_block() {
    let block_values = 256usize;
    let values: Vec<f64> = (0..4096)
        .map(|i| (f64::from(i) * 0.013).sin() + f64::from(i % 97) * 0.1)
        .collect();
    let file = TempSeries::write(&values);
    let store = PerSubsequenceNormalized::new(
        BlockCachedSeries::open_with(
            &file.path,
            BlockCacheConfig::new()
                .with_block_values(block_values)
                .with_capacity_blocks(64),
        )
        .unwrap(),
    );

    let len = 64usize;
    let first = 500usize;
    let last = 539usize;
    let query = ts_core::normalize::znormalize(&values[first..first + len]);
    let pipeline = Pipeline::new(&query, f64::INFINITY);
    let options = plan_verify_options(&store, VerifyOptions::exhaustive(false));
    assert!(
        options.coalesce,
        "normalised store opts back into coalescing"
    );
    assert!(
        options.rolling_norm,
        "… via in-pipeline rolling normalisation"
    );

    let mut set = CandidateSet::new();
    for p in first..=last {
        set.push(p as u32);
    }
    let mut out = Vec::new();
    let before = store.inner().physical_reads();
    let report = pipeline
        .verify_into(
            &mut set,
            |start, buf| store.read_raw_range_into(start, buf),
            options,
            &mut out,
        )
        .unwrap();
    let expected_blocks = (last + len - 1) / block_values - first / block_values + 1;
    assert_eq!(report.runs, 1, "overlapping windows coalesce into one run");
    assert_eq!(report.verified, last - first + 1);
    assert_eq!(out.len(), last - first + 1, "ε = ∞ accepts everything");
    assert_eq!(
        store.inner().physical_reads() - before,
        expected_blocks as u64,
        "one raw range read per uncached block, despite normalisation"
    );

    // And the answer matches naive per-window reads of normalised windows.
    let candidates: Vec<u32> = (first..=last).map(|p| p as u32).collect();
    assert_eq!(
        out,
        naive_normalized_verify(&store, &query, f64::INFINITY, &candidates)
    );
}

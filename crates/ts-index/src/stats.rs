//! Structural and per-query statistics.

/// Structural statistics of a built TS-Index (used for the Figure 8 style
/// memory-footprint reporting and for the invariants checked in tests).
#[derive(Debug, Clone, Copy, Default, PartialEq, Eq)]
pub struct TsIndexStats {
    /// Total number of tree nodes.
    pub nodes: usize,
    /// Number of leaf nodes.
    pub leaves: usize,
    /// Number of internal nodes.
    pub internal: usize,
    /// Number of indexed subsequence positions.
    pub entries: usize,
    /// Tree height (number of levels; a lone root leaf has height 1).
    pub height: usize,
    /// Approximate heap memory used by the index structure, in bytes.
    pub memory_bytes: usize,
}

/// Per-query execution statistics for Algorithm 1.
#[derive(Debug, Clone, Copy, Default, PartialEq, Eq)]
pub struct TsQueryStats {
    /// Nodes whose MBTS was compared against the query.
    pub nodes_visited: usize,
    /// Nodes pruned because `d(Q, B) > ε` (Lemma 1).
    pub nodes_pruned: usize,
    /// Candidate subsequences fetched from the store for verification.
    pub candidates: usize,
    /// Candidates accepted as twins.
    pub matches: usize,
}

impl TsQueryStats {
    /// Merges the statistics of two partial traversals (used by the parallel
    /// query path).
    #[must_use]
    pub fn merged(self, other: Self) -> Self {
        Self {
            nodes_visited: self.nodes_visited + other.nodes_visited,
            nodes_pruned: self.nodes_pruned + other.nodes_pruned,
            candidates: self.candidates + other.candidates,
            matches: self.matches + other.matches,
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn merge_adds_fields() {
        let a = TsQueryStats {
            nodes_visited: 1,
            nodes_pruned: 2,
            candidates: 3,
            matches: 4,
        };
        let b = TsQueryStats {
            nodes_visited: 10,
            nodes_pruned: 20,
            candidates: 30,
            matches: 40,
        };
        let m = a.merged(b);
        assert_eq!(m.nodes_visited, 11);
        assert_eq!(m.nodes_pruned, 22);
        assert_eq!(m.candidates, 33);
        assert_eq!(m.matches, 44);
    }

    #[test]
    fn defaults_are_zero() {
        assert_eq!(TsIndexStats::default().nodes, 0);
        assert_eq!(TsQueryStats::default().candidates, 0);
    }
}

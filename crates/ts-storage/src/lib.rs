//! # ts-storage
//!
//! Storage substrate for the twin subsequence search workspace.
//!
//! The paper's experimental setup (§6.1) keeps every index structure in main
//! memory while the raw input time series resides **on disk**; leaf nodes
//! store only the starting positions of their subsequences, and candidate
//! subsequences are fetched from the data file with random access during
//! verification.  This crate provides that substrate:
//!
//! * [`SeriesStore`] — the access trait every index crate builds against.
//! * [`AppendableStore`] — the streaming extension: stores whose series can
//!   grow monotonically at the end (positions never shift), the storage half
//!   of the `ts-ingest` ingestion contract.
//! * [`InMemorySeries`] — a simple in-memory store (used in unit tests and
//!   when the caller prefers RAM-resident data).
//! * [`DiskSeries`] / [`write_series`] — a little binary format
//!   (magic + length header, little-endian `f64` payload) with `pread`-style
//!   random subsequence access, mirroring the paper's setup.
//! * [`PerSubsequenceNormalized`] — a wrapper that z-normalises every
//!   extracted subsequence on the fly (the Fig. 6 regime).
//! * [`text`] — plain-text loaders/writers for interoperability with the
//!   original datasets' distribution format (one value per line).

#![forbid(unsafe_code)]
#![warn(missing_docs)]

mod appendable;
mod disk;
mod error;
mod memory;
mod normalized;
mod store;
pub mod text;

pub use appendable::{validate_finite, AppendableStore};
pub use disk::{write_series, DiskSeries, FORMAT_MAGIC, HEADER_BYTES};
pub use error::{Result, StorageError};
pub use memory::InMemorySeries;
pub use normalized::PerSubsequenceNormalized;
pub use store::SeriesStore;

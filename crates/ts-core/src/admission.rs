//! Admission control for a long-lived query service.
//!
//! A daemon that accepts work from many concurrent client connections must
//! decide *before* executing a request whether it can afford to: an
//! unbounded queue converts overload into unbounded latency, while a
//! bounded queue converts it into prompt, typed rejection that clients can
//! retry against another replica.  This module provides that boundary:
//!
//! * [`AdmissionQueue`] — a bounded MPMC queue.  Producers (connection
//!   handlers) call [`try_push`](AdmissionQueue::try_push), which **never
//!   blocks**: when the queue is full the request is rejected with
//!   [`AdmissionError::Overloaded`] so the connection can answer the client
//!   immediately (backpressure).  Consumers (the dispatcher) call
//!   [`pop`](AdmissionQueue::pop) / [`pop_batch`](AdmissionQueue::pop_batch)
//!   which park on a condvar until work or a timeout arrives.
//! * [`Admitted`] — the envelope around each queued item recording when it
//!   was admitted and an optional **deadline**.  The dispatcher checks
//!   [`expired`](Admitted::expired) after dequeue: a request that spent its
//!   entire budget waiting is answered with a deadline error instead of
//!   wasting executor time on an answer nobody is waiting for.
//! * [`close`](AdmissionQueue::close) — flips the queue into drain mode for
//!   graceful shutdown: new pushes are rejected with
//!   [`AdmissionError::Closed`], while consumers keep draining the items
//!   already admitted, so every request the daemon *accepted* is answered
//!   before the process exits.
//!
//! The queue is deliberately generic: `ts-serve` queues protocol requests,
//! but tests (and future subsystems, e.g. background maintenance) can queue
//! anything `Send`.

use std::collections::VecDeque;
use std::sync::atomic::{AtomicU64, Ordering};
use std::sync::{Condvar, Mutex, OnceLock};
use std::time::{Duration, Instant};

use crate::obs;

/// Cached handles for the queue's global metrics (one registry lookup per
/// process; see `docs/observability.md` for the naming conventions).  All
/// queues in a process share these series — the daemon runs one queue, and
/// per-instance counts remain available via [`AdmissionQueue::depth`] /
/// [`AdmissionQueue::total_admitted`] / [`AdmissionQueue::total_rejected`].
fn metric_depth() -> &'static obs::Gauge {
    static M: OnceLock<&'static obs::Gauge> = OnceLock::new();
    M.get_or_init(|| obs::gauge("twin_admission_depth", &[]))
}

fn metric_admitted() -> &'static obs::Counter {
    static M: OnceLock<&'static obs::Counter> = OnceLock::new();
    M.get_or_init(|| obs::counter("twin_admission_admitted_total", &[]))
}

fn metric_rejected_overloaded() -> &'static obs::Counter {
    static M: OnceLock<&'static obs::Counter> = OnceLock::new();
    M.get_or_init(|| obs::counter("twin_admission_rejected_total", &[("reason", "overloaded")]))
}

fn metric_rejected_closed() -> &'static obs::Counter {
    static M: OnceLock<&'static obs::Counter> = OnceLock::new();
    M.get_or_init(|| obs::counter("twin_admission_rejected_total", &[("reason", "closed")]))
}

fn metric_wait_ms() -> &'static obs::Histogram {
    static M: OnceLock<&'static obs::Histogram> = OnceLock::new();
    M.get_or_init(|| obs::histogram("twin_admission_wait_ms", &[]))
}

/// Configuration for an [`AdmissionQueue`].
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub struct AdmissionConfig {
    /// Maximum number of admitted-but-not-yet-dispatched requests.  A push
    /// beyond this is rejected with [`AdmissionError::Overloaded`].
    pub capacity: usize,
    /// Deadline applied to requests that do not carry their own, measured
    /// from admission.  `None` means such requests never expire.
    pub default_deadline: Option<Duration>,
}

impl AdmissionConfig {
    /// A queue of `capacity` slots with no default deadline.
    #[must_use]
    pub fn new(capacity: usize) -> Self {
        AdmissionConfig {
            capacity: capacity.max(1),
            default_deadline: None,
        }
    }

    /// Apply `deadline` to every request that does not carry its own.
    #[must_use]
    pub fn with_default_deadline(mut self, deadline: Duration) -> Self {
        self.default_deadline = Some(deadline);
        self
    }
}

impl Default for AdmissionConfig {
    fn default() -> Self {
        AdmissionConfig::new(256)
    }
}

/// Why a request was not admitted.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub enum AdmissionError {
    /// The queue is at capacity; the caller should reject the request
    /// upstream (backpressure) rather than wait.
    Overloaded {
        /// The configured capacity that was exhausted.
        capacity: usize,
    },
    /// The queue has been closed for shutdown; no new work is admitted.
    Closed,
}

impl std::fmt::Display for AdmissionError {
    fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
        match self {
            AdmissionError::Overloaded { capacity } => {
                write!(f, "admission queue full ({capacity} requests pending)")
            }
            AdmissionError::Closed => f.write_str("admission queue closed (shutting down)"),
        }
    }
}

impl std::error::Error for AdmissionError {}

/// An admitted item, stamped with its admission time and deadline.
#[derive(Debug)]
pub struct Admitted<T> {
    /// The queued item.
    pub item: T,
    /// Instant the item was admitted.
    pub admitted_at: Instant,
    /// Absolute deadline, if any.
    pub deadline: Option<Instant>,
}

impl<T> Admitted<T> {
    /// Whether the deadline has passed (always `false` without a deadline).
    #[must_use]
    pub fn expired(&self) -> bool {
        self.deadline.is_some_and(|d| Instant::now() >= d)
    }

    /// Time the item has spent queued so far.
    #[must_use]
    pub fn queued_for(&self) -> Duration {
        self.admitted_at.elapsed()
    }
}

#[derive(Debug)]
struct QueueState<T> {
    items: VecDeque<Admitted<T>>,
    closed: bool,
}

/// Bounded MPMC admission queue with overload rejection and drain-on-close.
///
/// See the [module docs](self) for the protocol.  All methods are `&self`;
/// share the queue behind an `Arc` between connection handlers and the
/// dispatcher.
#[derive(Debug)]
pub struct AdmissionQueue<T> {
    config: AdmissionConfig,
    state: Mutex<QueueState<T>>,
    available: Condvar,
    admitted: AtomicU64,
    rejected: AtomicU64,
}

impl<T> AdmissionQueue<T> {
    /// Create a queue with the given configuration.
    #[must_use]
    pub fn new(config: AdmissionConfig) -> Self {
        AdmissionQueue {
            config,
            state: Mutex::new(QueueState {
                items: VecDeque::with_capacity(config.capacity),
                closed: false,
            }),
            available: Condvar::new(),
            admitted: AtomicU64::new(0),
            rejected: AtomicU64::new(0),
        }
    }

    /// Configured capacity.
    #[must_use]
    pub fn capacity(&self) -> usize {
        self.config.capacity
    }

    /// Admit `item` with the queue's default deadline.  Never blocks.
    ///
    /// # Errors
    ///
    /// [`AdmissionError::Overloaded`] when the queue is at capacity,
    /// [`AdmissionError::Closed`] after [`close`](Self::close).
    pub fn try_push(&self, item: T) -> Result<(), AdmissionError> {
        self.try_push_with_deadline(item, self.config.default_deadline)
    }

    /// Admit `item` with an explicit deadline budget (`None` = never
    /// expires, overriding any default).  Never blocks.
    ///
    /// # Errors
    ///
    /// Same as [`try_push`](Self::try_push).
    pub fn try_push_with_deadline(
        &self,
        item: T,
        budget: Option<Duration>,
    ) -> Result<(), AdmissionError> {
        let now = Instant::now();
        let entry = Admitted {
            item,
            admitted_at: now,
            deadline: budget.map(|b| now + b),
        };
        let depth = {
            let mut state = self.state.lock().unwrap_or_else(|e| e.into_inner());
            if state.closed {
                self.rejected.fetch_add(1, Ordering::Relaxed);
                metric_rejected_closed().inc();
                return Err(AdmissionError::Closed);
            }
            if state.items.len() >= self.config.capacity {
                self.rejected.fetch_add(1, Ordering::Relaxed);
                metric_rejected_overloaded().inc();
                return Err(AdmissionError::Overloaded {
                    capacity: self.config.capacity,
                });
            }
            state.items.push_back(entry);
            state.items.len()
        };
        self.admitted.fetch_add(1, Ordering::Relaxed);
        metric_admitted().inc();
        metric_depth().set(depth as i64);
        self.available.notify_one();
        Ok(())
    }

    /// Dequeue one item, waiting up to `timeout` for one to arrive.
    ///
    /// Returns `None` on timeout, or immediately once the queue is closed
    /// *and* drained — the consumer's signal to exit its loop.
    pub fn pop(&self, timeout: Duration) -> Option<Admitted<T>> {
        self.pop_batch(1, timeout).pop()
    }

    /// Dequeue up to `max` items, waiting up to `timeout` for the first.
    ///
    /// Once at least one item is available the call returns straight away
    /// with everything queued (capped at `max`) — batching amortises
    /// dispatch overhead without adding latency.  An empty vec means
    /// timeout, or closed-and-drained.
    pub fn pop_batch(&self, max: usize, timeout: Duration) -> Vec<Admitted<T>> {
        if max == 0 {
            return Vec::new();
        }
        let deadline = Instant::now() + timeout;
        let mut state = self.state.lock().unwrap_or_else(|e| e.into_inner());
        loop {
            if !state.items.is_empty() {
                let take = state.items.len().min(max);
                let batch: Vec<Admitted<T>> = state.items.drain(..take).collect();
                metric_depth().set(state.items.len() as i64);
                for admitted in &batch {
                    metric_wait_ms().observe(admitted.queued_for().as_secs_f64() * 1e3);
                }
                // Free slots opened up; overloaded producers poll, so no
                // notification is needed, but waiting consumers may still
                // have items to take.
                if !state.items.is_empty() {
                    self.available.notify_one();
                }
                return batch;
            }
            if state.closed {
                return Vec::new();
            }
            let now = Instant::now();
            if now >= deadline {
                return Vec::new();
            }
            let (guard, _timed_out) = self
                .available
                .wait_timeout(state, deadline - now)
                .unwrap_or_else(|e| e.into_inner());
            state = guard;
        }
    }

    /// Close the queue: reject all future pushes, wake all consumers.
    /// Items already admitted remain drainable via [`pop`](Self::pop) /
    /// [`pop_batch`](Self::pop_batch).
    pub fn close(&self) {
        let mut state = self.state.lock().unwrap_or_else(|e| e.into_inner());
        state.closed = true;
        drop(state);
        self.available.notify_all();
    }

    /// Whether [`close`](Self::close) has been called.
    #[must_use]
    pub fn is_closed(&self) -> bool {
        self.state.lock().unwrap_or_else(|e| e.into_inner()).closed
    }

    /// Number of items currently queued.
    #[must_use]
    pub fn depth(&self) -> usize {
        self.state
            .lock()
            .unwrap_or_else(|e| e.into_inner())
            .items
            .len()
    }

    /// Total items ever admitted.
    #[must_use]
    pub fn total_admitted(&self) -> u64 {
        self.admitted.load(Ordering::Relaxed)
    }

    /// Total pushes rejected (overload + closed).
    #[must_use]
    pub fn total_rejected(&self) -> u64 {
        self.rejected.load(Ordering::Relaxed)
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use std::sync::Arc;

    #[test]
    fn push_pop_fifo() {
        let q = AdmissionQueue::new(AdmissionConfig::new(4));
        q.try_push(1).unwrap();
        q.try_push(2).unwrap();
        let a = q.pop(Duration::from_millis(10)).unwrap();
        let b = q.pop(Duration::from_millis(10)).unwrap();
        assert_eq!((a.item, b.item), (1, 2));
        assert!(!a.expired());
        assert_eq!(q.depth(), 0);
        assert_eq!(q.total_admitted(), 2);
    }

    #[test]
    fn overload_rejects_without_blocking() {
        let q = AdmissionQueue::new(AdmissionConfig::new(2));
        q.try_push(1).unwrap();
        q.try_push(2).unwrap();
        let err = q.try_push(3).unwrap_err();
        assert_eq!(err, AdmissionError::Overloaded { capacity: 2 });
        assert_eq!(q.total_rejected(), 1);
        // Draining frees a slot.
        q.pop(Duration::from_millis(10)).unwrap();
        q.try_push(3).unwrap();
    }

    #[test]
    fn capacity_floor_is_one() {
        let q = AdmissionQueue::new(AdmissionConfig::new(0));
        assert_eq!(q.capacity(), 1);
        q.try_push(1).unwrap();
        assert!(q.try_push(2).is_err());
    }

    #[test]
    fn pop_times_out_when_empty() {
        let q: AdmissionQueue<u32> = AdmissionQueue::new(AdmissionConfig::default());
        let start = Instant::now();
        assert!(q.pop(Duration::from_millis(20)).is_none());
        assert!(start.elapsed() >= Duration::from_millis(20));
    }

    #[test]
    fn pop_batch_takes_everything_up_to_max() {
        let q = AdmissionQueue::new(AdmissionConfig::new(8));
        for i in 0..5 {
            q.try_push(i).unwrap();
        }
        let batch = q.pop_batch(3, Duration::from_millis(10));
        assert_eq!(batch.iter().map(|a| a.item).collect::<Vec<_>>(), [0, 1, 2]);
        let rest = q.pop_batch(10, Duration::from_millis(10));
        assert_eq!(rest.iter().map(|a| a.item).collect::<Vec<_>>(), [3, 4]);
        assert!(q.pop_batch(0, Duration::from_millis(1)).is_empty());
    }

    #[test]
    fn close_rejects_pushes_but_drains() {
        let q = AdmissionQueue::new(AdmissionConfig::new(4));
        q.try_push(1).unwrap();
        q.close();
        assert_eq!(q.try_push(2), Err(AdmissionError::Closed));
        assert!(q.is_closed());
        // The admitted item is still served...
        assert_eq!(q.pop(Duration::from_millis(10)).unwrap().item, 1);
        // ...then pops return immediately without waiting for the timeout.
        let start = Instant::now();
        assert!(q.pop(Duration::from_secs(5)).is_none());
        assert!(start.elapsed() < Duration::from_secs(1));
    }

    #[test]
    fn deadlines_expire() {
        let config = AdmissionConfig::new(4).with_default_deadline(Duration::from_millis(5));
        let q = AdmissionQueue::new(config);
        q.try_push(1).unwrap();
        // Explicit budget overrides the default.
        q.try_push_with_deadline(2, None).unwrap();
        std::thread::sleep(Duration::from_millis(20));
        let batch = q.pop_batch(4, Duration::from_millis(10));
        assert_eq!(batch.len(), 2);
        assert!(batch[0].expired(), "default deadline should have passed");
        assert!(!batch[1].expired(), "explicit None budget never expires");
        assert!(batch[0].queued_for() >= Duration::from_millis(20));
    }

    #[test]
    fn deadline_expiring_while_queued_is_seen_at_dequeue() {
        // Regression: a request admitted with budget left must still read
        // as expired at dequeue if the budget ran out *while queued* — the
        // dispatcher relies on `expired()` being evaluated against the
        // absolute deadline, not against the state at admission.
        let q = AdmissionQueue::new(AdmissionConfig::new(4));
        q.try_push_with_deadline("race", Some(Duration::from_millis(10)))
            .unwrap();
        let peek_not_expired = {
            // Freshly admitted: the deadline has not passed yet.
            let state = q.state.lock().unwrap();
            !state.items[0].expired()
        };
        assert!(peek_not_expired, "deadline must not be pre-expired");
        std::thread::sleep(Duration::from_millis(25));
        let admitted = q.pop(Duration::from_millis(10)).unwrap();
        assert!(
            admitted.expired(),
            "a deadline that lapsed while queued must read expired at dequeue"
        );
        assert!(admitted.queued_for() >= Duration::from_millis(25));
    }

    #[test]
    fn depth_accounting_stays_exact_across_rejects() {
        // Regression: rejected pushes must not perturb the depth — only
        // successful admissions and dequeues move it, and the
        // admitted/rejected totals must partition every attempt exactly.
        let q = AdmissionQueue::new(AdmissionConfig::new(3));
        for i in 0..3 {
            q.try_push(i).unwrap();
            assert_eq!(q.depth(), i + 1);
        }
        for _ in 0..5 {
            assert!(matches!(
                q.try_push(99),
                Err(AdmissionError::Overloaded { .. })
            ));
            assert_eq!(q.depth(), 3, "a rejected push must not change depth");
        }
        assert_eq!(q.total_admitted(), 3);
        assert_eq!(q.total_rejected(), 5);
        // Drain one, re-admit one: depth tracks exactly.
        q.pop(Duration::from_millis(10)).unwrap();
        assert_eq!(q.depth(), 2);
        q.try_push(3).unwrap();
        assert_eq!(q.depth(), 3);
        // Close: the closed rejection is counted too, depth untouched.
        q.close();
        assert_eq!(q.try_push(4), Err(AdmissionError::Closed));
        assert_eq!(q.depth(), 3);
        assert_eq!(q.total_rejected(), 6);
        let batch = q.pop_batch(10, Duration::from_millis(10));
        assert_eq!(batch.len(), 3);
        assert_eq!(q.depth(), 0);
        assert_eq!(q.total_admitted(), 4);
    }

    #[test]
    fn close_wakes_blocked_consumer() {
        let q: Arc<AdmissionQueue<u32>> = Arc::new(AdmissionQueue::new(AdmissionConfig::new(4)));
        let consumer = {
            let q = Arc::clone(&q);
            std::thread::spawn(move || q.pop(Duration::from_secs(30)))
        };
        std::thread::sleep(Duration::from_millis(20));
        q.close();
        let start = Instant::now();
        assert!(consumer.join().unwrap().is_none());
        assert!(start.elapsed() < Duration::from_secs(5));
    }

    #[test]
    fn concurrent_producers_and_consumers_preserve_items() {
        let q: Arc<AdmissionQueue<u64>> = Arc::new(AdmissionQueue::new(AdmissionConfig::new(1024)));
        const PER_PRODUCER: u64 = 200;
        const PRODUCERS: u64 = 4;
        let producers: Vec<_> = (0..PRODUCERS)
            .map(|p| {
                let q = Arc::clone(&q);
                std::thread::spawn(move || {
                    for i in 0..PER_PRODUCER {
                        let v = p * PER_PRODUCER + i;
                        // Spin on overload: bounded queue, patient producer.
                        while q.try_push(v).is_err() {
                            std::thread::yield_now();
                        }
                    }
                })
            })
            .collect();
        let consumers: Vec<_> = (0..2)
            .map(|_| {
                let q = Arc::clone(&q);
                std::thread::spawn(move || {
                    let mut got = Vec::new();
                    loop {
                        let batch = q.pop_batch(16, Duration::from_millis(50));
                        if batch.is_empty() && q.is_closed() {
                            return got;
                        }
                        got.extend(batch.into_iter().map(|a| a.item));
                    }
                })
            })
            .collect();
        for p in producers {
            p.join().unwrap();
        }
        q.close();
        let mut all: Vec<u64> = consumers
            .into_iter()
            .flat_map(|c| c.join().unwrap())
            .collect();
        all.sort_unstable();
        let expected: Vec<u64> = (0..PRODUCERS * PER_PRODUCER).collect();
        assert_eq!(
            all, expected,
            "every admitted item is dequeued exactly once"
        );
        assert_eq!(q.total_admitted(), PRODUCERS * PER_PRODUCER);
    }
}

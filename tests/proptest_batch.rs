//! Property-based tests for the Query/Outcome API: for random series and
//! thresholds, `Engine::search_batch` returns exactly the per-query
//! sequential answers for all four methods, and every collected
//! [`twin_search::SearchStats`] is internally consistent
//! (matches ≤ candidates verified ≤ candidates generated) on every store
//! backend — memory, readahead disk, the sharded block cache and the memory
//! map — under both random and sequential query mixes.

use proptest::collection::vec;
use proptest::prelude::*;

use twin_search::{Engine, EngineConfig, Method, SeriesStore, StoreKind, TwinQuery};

/// A strategy producing a series of 200–500 smooth-ish values (random walk
/// steps bounded to keep Chebyshev thresholds meaningful).
fn series_strategy() -> impl Strategy<Value = Vec<f64>> {
    (200usize..500, vec(-1.0_f64..1.0, 500)).prop_map(|(n, steps)| {
        let mut x = 0.0;
        steps
            .into_iter()
            .take(n)
            .map(|s| {
                x += s;
                x
            })
            .collect()
    })
}

/// Builds one engine per method over `values` (whole-series normalisation,
/// small index parameters so trees actually branch at this scale).
fn engines(values: &[f64], len: usize, store: StoreKind) -> Vec<Engine> {
    Method::ALL
        .iter()
        .map(|&m| {
            let config = EngineConfig::new(m, len)
                .with_isax_leaf_capacity(16)
                .with_tsindex_capacities(2, 6)
                .with_store(store);
            Engine::build(values, config).expect("valid build")
        })
        .collect()
}

/// The shared property: batch answers equal sequential answers and stats are
/// internally consistent for every method, for a query mix holding both
/// sequential windows (adjacent starts) and random jumps (`random_frac`
/// positions scattered over the series).
fn check_batch_and_stats(
    values: &[f64],
    len_frac: f64,
    eps: f64,
    random_frac: f64,
    store: StoreKind,
) -> Result<(), TestCaseError> {
    let n = values.len();
    let len = ((n as f64 * len_frac) as usize).clamp(4, n / 2);
    let max_start = n - len;
    for engine in engines(values, len, store) {
        prop_assert_eq!(engine.store().is_disk_backed(), store.is_disk_backed());
        prop_assert_eq!(engine.store().store_kind(), store);
        // A mixed workload: two sequential neighbours (the readahead-friendly
        // pattern) plus random jumps (the tree-ordered verification pattern).
        let random_start = ((max_start as f64) * random_frac) as usize;
        let starts = [
            0,
            1.min(max_start),
            random_start.min(max_start),
            (n / 3).min(max_start),
            max_start,
        ];
        let queries: Vec<TwinQuery> = starts
            .iter()
            .map(|&p| {
                TwinQuery::new(engine.store().read(p, len).unwrap(), eps)
                    .parallel(2)
                    .collect_stats()
            })
            .collect();
        let batch = engine.search_batch(&queries).unwrap();
        prop_assert_eq!(batch.len(), queries.len());
        for ((&start, query), outcome) in starts.iter().zip(&queries).zip(&batch) {
            let sequential = engine.search(query.values(), eps).unwrap();
            prop_assert_eq!(
                &outcome.positions,
                &sequential,
                "{} on {} disagrees between batch and sequential",
                engine.method(),
                store
            );
            prop_assert!(outcome.positions.contains(&start), "self-match");
            prop_assert_eq!(outcome.match_count, sequential.len());
            // The documented stats invariants.
            prop_assert!(outcome.stats_consistent(), "{}", engine.method());
            let stats = outcome.stats.expect("stats requested");
            prop_assert!(stats.candidates_verified <= stats.candidates_generated);
            prop_assert!(outcome.match_count <= stats.candidates_verified);
            prop_assert!(stats.nodes_pruned <= stats.nodes_visited);
        }
    }
    Ok(())
}

proptest! {
    #![proptest_config(ProptestConfig::with_cases(12))]

    #[test]
    fn batch_equals_sequential_on_memory_stores(
        values in series_strategy(),
        len_frac in 0.05_f64..0.3,
        eps in 0.05_f64..2.0,
        random_frac in 0.0_f64..1.0,
    ) {
        check_batch_and_stats(&values, len_frac, eps, random_frac, StoreKind::Memory)?;
    }
}

proptest! {
    // Disk-backed cases write real temp files; keep the case count low.
    #![proptest_config(ProptestConfig::with_cases(4))]

    #[test]
    fn batch_equals_sequential_on_disk_stores(
        values in series_strategy(),
        len_frac in 0.05_f64..0.3,
        eps in 0.05_f64..2.0,
        random_frac in 0.0_f64..1.0,
    ) {
        check_batch_and_stats(&values, len_frac, eps, random_frac, StoreKind::Disk)?;
    }

    #[test]
    fn batch_equals_sequential_on_block_cached_stores(
        values in series_strategy(),
        len_frac in 0.05_f64..0.3,
        eps in 0.05_f64..2.0,
        random_frac in 0.0_f64..1.0,
    ) {
        check_batch_and_stats(&values, len_frac, eps, random_frac, StoreKind::DiskCached)?;
    }

    #[test]
    fn batch_equals_sequential_on_mmap_stores(
        values in series_strategy(),
        len_frac in 0.05_f64..0.3,
        eps in 0.05_f64..2.0,
        random_frac in 0.0_f64..1.0,
    ) {
        check_batch_and_stats(&values, len_frac, eps, random_frac, StoreKind::Mmap)?;
    }
}

//! The `twin serve` wire protocol: length-prefixed binary frames.
//!
//! Every message — request or response — is one **frame**:
//!
//! ```text
//! +----------------+---------+--------+------------------+
//! | payload length | version | opcode | body (payload-2) |
//! |   u32 LE       |  u8 =2  |  u8    |                  |
//! +----------------+---------+--------+------------------+
//! ```
//!
//! The length prefix counts the payload (version + opcode + body), not
//! itself.  Frames larger than [`MAX_FRAME_BYTES`] are rejected before any
//! allocation, so a hostile length prefix cannot balloon memory.  All
//! integers are little-endian; strings are `u16` length + UTF-8 bytes;
//! `f64` arrays are `u32` count + IEEE-754 LE values; position arrays are
//! `u32` count + `u64` values.  See `docs/protocol.md` for the normative
//! description, opcode table and error-code table.
//!
//! The encode/decode functions here are pure (`&[u8]` ⟷ types); the
//! [`read_frame`] / [`write_frame`] helpers do the I/O.  Both the server
//! and the [`crate::Client`] are built from exactly these functions, so a
//! round-trip property test over arbitrary requests/responses pins the
//! format.

use std::io::{Read, Write};
use std::time::Duration;

use ts_core::query::{SearchOutcome, SearchStats, TwinQuery};
use ts_core::stats::LatencySummary;
use twin_search::{Method, TenantStats};

/// Protocol version carried in every frame.  Version 2 added the
/// `Checkpoint` request and the WAL counter block in `STATS_OK`; version 3
/// added the `Metrics` / `Trace` requests (Prometheus exposition and
/// recent slow-query traces as `u32`-length text blobs) and the
/// checkpoint-lag block in `STATS_OK`.
pub const PROTOCOL_VERSION: u8 = 3;

/// Hard cap on a frame's payload: 64 MiB (≈ 8M points per append).
pub const MAX_FRAME_BYTES: u32 = 64 * 1024 * 1024;

/// Request opcodes (`0x01..=0x08`).
mod op {
    pub const QUERY: u8 = 0x01;
    pub const APPEND: u8 = 0x02;
    pub const CREATE_TENANT: u8 = 0x03;
    pub const STATS: u8 = 0x04;
    pub const SHUTDOWN: u8 = 0x05;
    pub const CHECKPOINT: u8 = 0x06;
    pub const METRICS: u8 = 0x07;
    pub const TRACE: u8 = 0x08;
    pub const ERROR: u8 = 0x80;
    pub const QUERY_OK: u8 = 0x81;
    pub const APPEND_OK: u8 = 0x82;
    pub const CREATED: u8 = 0x83;
    pub const STATS_OK: u8 = 0x84;
    pub const SHUTTING_DOWN: u8 = 0x85;
    pub const CHECKPOINT_OK: u8 = 0x86;
    pub const METRICS_OK: u8 = 0x87;
    pub const TRACE_OK: u8 = 0x88;
}

/// A malformed or oversized frame.
#[derive(Debug)]
pub enum ProtocolError {
    /// The underlying transport failed.
    Io(std::io::Error),
    /// The length prefix exceeds [`MAX_FRAME_BYTES`].
    FrameTooLarge {
        /// Claimed payload length.
        claimed: u32,
    },
    /// The frame's version byte is not [`PROTOCOL_VERSION`].
    VersionMismatch {
        /// Version byte received.
        got: u8,
    },
    /// The payload could not be decoded (bad opcode, truncated body,
    /// invalid UTF-8, unknown enum value …).
    Malformed(String),
}

impl std::fmt::Display for ProtocolError {
    fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
        match self {
            ProtocolError::Io(e) => write!(f, "transport error: {e}"),
            ProtocolError::FrameTooLarge { claimed } => write!(
                f,
                "frame of {claimed} bytes exceeds the {MAX_FRAME_BYTES}-byte cap"
            ),
            ProtocolError::VersionMismatch { got } => {
                write!(f, "protocol version {got} (expected {PROTOCOL_VERSION})")
            }
            ProtocolError::Malformed(reason) => write!(f, "malformed frame: {reason}"),
        }
    }
}

impl std::error::Error for ProtocolError {
    fn source(&self) -> Option<&(dyn std::error::Error + 'static)> {
        match self {
            ProtocolError::Io(e) => Some(e),
            _ => None,
        }
    }
}

impl From<std::io::Error> for ProtocolError {
    fn from(e: std::io::Error) -> Self {
        ProtocolError::Io(e)
    }
}

/// Typed error codes carried by [`Response::Error`].
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
#[repr(u8)]
pub enum ErrorCode {
    /// The request was syntactically valid but semantically wrong
    /// (bad epsilon, bad method name, zero-length window, …).
    BadRequest = 1,
    /// The named tenant does not exist.
    NoSuchTenant = 2,
    /// A tenant of that name already exists.
    TenantExists = 3,
    /// The tenant has not yet ingested one full window; no index exists.
    NotReady = 4,
    /// The admission queue is full; retry later or elsewhere
    /// (backpressure).
    Overloaded = 5,
    /// The request spent its deadline budget queued and was not executed.
    DeadlineExceeded = 6,
    /// The daemon is draining for shutdown and admits no new work.
    ShuttingDown = 7,
    /// An internal storage or engine failure.
    Internal = 8,
}

impl ErrorCode {
    /// Decode from the wire byte.
    pub(crate) fn from_u8(byte: u8) -> Result<Self, ProtocolError> {
        Ok(match byte {
            1 => ErrorCode::BadRequest,
            2 => ErrorCode::NoSuchTenant,
            3 => ErrorCode::TenantExists,
            4 => ErrorCode::NotReady,
            5 => ErrorCode::Overloaded,
            6 => ErrorCode::DeadlineExceeded,
            7 => ErrorCode::ShuttingDown,
            8 => ErrorCode::Internal,
            other => {
                return Err(ProtocolError::Malformed(format!(
                    "unknown error code {other}"
                )))
            }
        })
    }
}

impl std::fmt::Display for ErrorCode {
    fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
        let name = match self {
            ErrorCode::BadRequest => "bad-request",
            ErrorCode::NoSuchTenant => "no-such-tenant",
            ErrorCode::TenantExists => "tenant-exists",
            ErrorCode::NotReady => "not-ready",
            ErrorCode::Overloaded => "overloaded",
            ErrorCode::DeadlineExceeded => "deadline-exceeded",
            ErrorCode::ShuttingDown => "shutting-down",
            ErrorCode::Internal => "internal",
        };
        f.write_str(name)
    }
}

/// A query, as carried on the wire.
#[derive(Debug, Clone, PartialEq)]
pub struct QuerySpec {
    /// Query subsequence values.
    pub values: Vec<f64>,
    /// Chebyshev threshold ε.
    pub epsilon: f64,
    /// Cap on returned positions (`None` = all).
    pub limit: Option<usize>,
    /// Count matches without materialising positions.
    pub count_only: bool,
    /// Collect per-query [`SearchStats`].
    pub collect_stats: bool,
    /// Per-request deadline budget in milliseconds (`None` = the server's
    /// default admission deadline).
    pub deadline_ms: Option<u32>,
}

impl QuerySpec {
    /// A plain query: all positions, no stats, server-default deadline.
    #[must_use]
    pub fn new(values: Vec<f64>, epsilon: f64) -> Self {
        QuerySpec {
            values,
            epsilon,
            limit: None,
            count_only: false,
            collect_stats: false,
            deadline_ms: None,
        }
    }

    /// Converts the wire spec into the engine's [`TwinQuery`].
    #[must_use]
    pub fn to_query(&self) -> TwinQuery {
        let mut query = TwinQuery::new(self.values.clone(), self.epsilon);
        if let Some(limit) = self.limit {
            query = query.limit(limit);
        }
        if self.count_only {
            query = query.count_only();
        }
        if self.collect_stats {
            query = query.collect_stats();
        }
        query
    }
}

/// A client request.
#[derive(Debug, Clone, PartialEq)]
pub enum Request {
    /// Answer a twin query against a tenant's series.
    Query {
        /// Tenant name.
        tenant: String,
        /// The query.
        spec: QuerySpec,
    },
    /// Append points to a tenant's series (fsynced before the ack).
    Append {
        /// Tenant name.
        tenant: String,
        /// Points to append.
        values: Vec<f64>,
    },
    /// Create a tenant (may start empty and fill towards its first window).
    CreateTenant {
        /// Tenant name.
        tenant: String,
        /// Search method for the tenant's index.
        method: Method,
        /// Subsequence / window length.
        subsequence_len: usize,
        /// Initial points (may be empty).
        initial: Vec<f64>,
    },
    /// Fetch statistics for one tenant (or all loaded tenants).
    Stats {
        /// Tenant name; `None` = every loaded tenant.
        tenant: Option<String>,
    },
    /// Force a WAL checkpoint for a tenant: compact the durable log
    /// prefix into a snapshot and truncate the log to the tail.
    Checkpoint {
        /// Tenant name.
        tenant: String,
    },
    /// Fetch the process-wide metrics registry rendered in the Prometheus
    /// text exposition format.  Answered inline by the daemon (never
    /// queued), so metrics stay readable even under admission overload.
    Metrics,
    /// Fetch the most recent retained request traces, newest first,
    /// rendered one per line.  `limit = 0` returns every retained trace.
    /// Answered inline like [`Request::Metrics`].
    Trace {
        /// Maximum traces to return (0 = all retained).
        limit: u32,
    },
    /// Drain in-flight requests, flush every tenant, exit.
    Shutdown,
}

/// Per-tenant statistics as carried on the wire (times in microseconds,
/// latency summary in milliseconds).
#[derive(Debug, Clone, PartialEq)]
pub struct WireTenantStats {
    /// Tenant name.
    pub name: String,
    /// Method label (kebab-case, parseable by [`Method::from_str`]).
    pub method: String,
    /// Window length.
    pub subsequence_len: u64,
    /// Points ingested.
    pub series_len: u64,
    /// Whether the tenant has an index.
    pub ready: bool,
    /// Points appended over the tenant's lifetime in this process.
    pub points_appended: u64,
    /// Append calls over the tenant's lifetime in this process.
    pub append_calls: u64,
    /// Fresh windows indexed incrementally.
    pub windows_indexed: u64,
    /// Cumulative store write time, µs.
    pub store_time_us: u64,
    /// Cumulative index maintenance time, µs.
    pub maintain_time_us: u64,
    /// Queries answered.
    pub queries: u64,
    /// Latency summary over the recent-query reservoir, milliseconds.
    pub latency_ms: WireLatency,
    /// Durable (group-commit) appends acknowledged by the WAL.
    pub wal_appends: u64,
    /// fsyncs the WAL actually issued.
    pub wal_fsyncs: u64,
    /// fsyncs avoided by riding another append's group commit.
    pub wal_fsyncs_saved: u64,
    /// Largest number of appends covered by a single fsync.
    pub wal_max_batch: u64,
    /// Checkpoints taken (background + manual).
    pub wal_checkpoints: u64,
    /// Log-tail values replayed by the most recent open of this WAL.
    pub wal_recovery_tail: u64,
    /// Append-fsync latency summary, milliseconds.
    pub fsync_ms: WireLatency,
    /// Records in the WAL tail not yet covered by a checkpoint.
    pub checkpoint_lag_records: u64,
    /// Bytes in the WAL tail not yet covered by a checkpoint.
    pub checkpoint_lag_bytes: u64,
    /// Latched checkpoint-lag watchdog alert.
    pub checkpoint_stuck: bool,
}

/// A [`LatencySummary`] on the wire.
#[derive(Debug, Clone, Copy, PartialEq)]
pub struct WireLatency {
    /// Samples aggregated.
    pub count: u64,
    /// Mean.
    pub mean: f64,
    /// Median.
    pub p50: f64,
    /// 95th percentile.
    pub p95: f64,
    /// 99th percentile.
    pub p99: f64,
}

impl From<LatencySummary> for WireLatency {
    fn from(s: LatencySummary) -> Self {
        WireLatency {
            count: s.count as u64,
            mean: s.mean,
            p50: s.p50,
            p95: s.p95,
            p99: s.p99,
        }
    }
}

impl From<&TenantStats> for WireTenantStats {
    fn from(s: &TenantStats) -> Self {
        WireTenantStats {
            name: s.name.clone(),
            method: s.method.label().to_string(),
            subsequence_len: s.subsequence_len as u64,
            series_len: s.series_len as u64,
            ready: s.ready,
            points_appended: s.ingest.points_appended as u64,
            append_calls: s.ingest.append_calls as u64,
            windows_indexed: s.ingest.windows_indexed as u64,
            store_time_us: s.ingest.store_time.as_micros() as u64,
            maintain_time_us: s.ingest.maintain_time.as_micros() as u64,
            queries: s.queries,
            latency_ms: s.query_latency_ms.into(),
            wal_appends: s.wal.appends,
            wal_fsyncs: s.wal.fsyncs,
            wal_fsyncs_saved: s.wal.fsyncs_saved,
            wal_max_batch: s.wal.max_batch,
            wal_checkpoints: s.wal.checkpoints,
            wal_recovery_tail: s.wal.last_recovery_tail_values,
            fsync_ms: s.wal.fsync_ms.into(),
            checkpoint_lag_records: s.checkpoint_lag_records,
            checkpoint_lag_bytes: s.checkpoint_lag_bytes,
            checkpoint_stuck: s.checkpoint_stuck,
        }
    }
}

/// Search statistics on the wire (subset of [`SearchStats`], µs times).
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub struct WireSearchStats {
    /// Candidates the filter produced.
    pub candidates_generated: u64,
    /// Candidates exactly verified.
    pub candidates_verified: u64,
    /// Index nodes visited.
    pub nodes_visited: u64,
    /// Index subtrees pruned.
    pub nodes_pruned: u64,
    /// Filtering time, µs.
    pub filter_time_us: u64,
    /// Verification time, µs.
    pub verify_time_us: u64,
}

impl From<&SearchStats> for WireSearchStats {
    fn from(s: &SearchStats) -> Self {
        WireSearchStats {
            candidates_generated: s.candidates_generated as u64,
            candidates_verified: s.candidates_verified as u64,
            nodes_visited: s.nodes_visited as u64,
            nodes_pruned: s.nodes_pruned as u64,
            filter_time_us: s.filter_time.as_micros() as u64,
            verify_time_us: s.verify_time.as_micros() as u64,
        }
    }
}

/// A query answer on the wire.
#[derive(Debug, Clone, PartialEq)]
pub struct QueryReply {
    /// Method name that answered (e.g. `"TS-Index"`).
    pub method: String,
    /// Matching positions (empty under `count_only`).
    pub positions: Vec<u64>,
    /// Total matches (≥ `positions.len()` under a limit).
    pub match_count: u64,
    /// Worker threads used.
    pub threads_used: u32,
    /// Server-side execution time, µs.
    pub query_time_us: u64,
    /// Execution statistics, if requested.
    pub stats: Option<WireSearchStats>,
}

impl QueryReply {
    /// Builds the wire reply from an engine outcome.
    #[must_use]
    pub fn from_outcome(outcome: &SearchOutcome) -> Self {
        QueryReply {
            method: outcome.method.to_string(),
            positions: outcome.positions.iter().map(|&p| p as u64).collect(),
            match_count: outcome.match_count as u64,
            threads_used: outcome.threads_used as u32,
            query_time_us: outcome.query_time.as_micros() as u64,
            stats: outcome.stats.as_ref().map(WireSearchStats::from),
        }
    }
}

/// A server response.
#[derive(Debug, Clone, PartialEq)]
pub enum Response {
    /// The request failed; see the code and human-readable message.
    Error {
        /// Typed error code.
        code: ErrorCode,
        /// Human-readable detail.
        message: String,
    },
    /// Answer to [`Request::Query`].
    Query(QueryReply),
    /// Answer to [`Request::Append`].
    Append {
        /// Series length after the append (the acknowledged, fsynced
        /// prefix a restarted daemon must recover).
        new_len: u64,
        /// Fresh windows indexed by this append.
        windows_indexed: u64,
    },
    /// Answer to [`Request::CreateTenant`].
    Created {
        /// Whether the tenant is immediately queryable.
        ready: bool,
        /// Initial series length.
        len: u64,
    },
    /// Answer to [`Request::Stats`].
    Stats(Vec<WireTenantStats>),
    /// Answer to [`Request::Checkpoint`].
    Checkpointed {
        /// Values the snapshot now covers; 0 when nothing new was durable
        /// (the checkpoint was a no-op).
        covered: u64,
    },
    /// Answer to [`Request::Metrics`]: the Prometheus text exposition.
    /// Carried as a `u32`-length blob — expositions routinely outgrow the
    /// `u16` string cap.
    Metrics {
        /// Prometheus-text-format exposition of every registered series.
        text: String,
    },
    /// Answer to [`Request::Trace`]: rendered trace lines, newest first.
    Traces {
        /// One rendered trace per line (may be empty).
        text: String,
    },
    /// Answer to [`Request::Shutdown`]: the daemon is draining.
    ShuttingDown,
}

// ---------------------------------------------------------------------------
// Primitive writers/readers
// ---------------------------------------------------------------------------

struct Cursor<'a> {
    buf: &'a [u8],
    pos: usize,
}

impl<'a> Cursor<'a> {
    fn new(buf: &'a [u8]) -> Self {
        Cursor { buf, pos: 0 }
    }

    fn take(&mut self, n: usize) -> Result<&'a [u8], ProtocolError> {
        if self.pos + n > self.buf.len() {
            return Err(ProtocolError::Malformed(format!(
                "truncated frame: wanted {n} bytes at offset {}, have {}",
                self.pos,
                self.buf.len() - self.pos
            )));
        }
        let slice = &self.buf[self.pos..self.pos + n];
        self.pos += n;
        Ok(slice)
    }

    fn u8(&mut self) -> Result<u8, ProtocolError> {
        Ok(self.take(1)?[0])
    }

    fn u16(&mut self) -> Result<u16, ProtocolError> {
        Ok(u16::from_le_bytes(self.take(2)?.try_into().unwrap()))
    }

    fn u32(&mut self) -> Result<u32, ProtocolError> {
        Ok(u32::from_le_bytes(self.take(4)?.try_into().unwrap()))
    }

    fn u64(&mut self) -> Result<u64, ProtocolError> {
        Ok(u64::from_le_bytes(self.take(8)?.try_into().unwrap()))
    }

    fn f64(&mut self) -> Result<f64, ProtocolError> {
        Ok(f64::from_le_bytes(self.take(8)?.try_into().unwrap()))
    }

    fn string(&mut self) -> Result<String, ProtocolError> {
        let len = self.u16()? as usize;
        let bytes = self.take(len)?;
        String::from_utf8(bytes.to_vec())
            .map_err(|_| ProtocolError::Malformed("string is not valid UTF-8".into()))
    }

    /// A `u32`-length UTF-8 blob: large text payloads (metrics
    /// expositions, trace dumps) that outgrow the `u16` string cap.  The
    /// length is still bounded by the frame cap checked before decoding.
    fn blob(&mut self) -> Result<String, ProtocolError> {
        let len = self.u32()? as usize;
        let bytes = self.take(len)?;
        String::from_utf8(bytes.to_vec())
            .map_err(|_| ProtocolError::Malformed("blob is not valid UTF-8".into()))
    }

    fn f64_array(&mut self) -> Result<Vec<f64>, ProtocolError> {
        let count = self.u32()? as usize;
        // The count is bounded by the already-capped frame size; still,
        // size-check before allocating so a lying count cannot balloon.
        if count * 8 > self.buf.len() - self.pos {
            return Err(ProtocolError::Malformed(format!(
                "f64 array of {count} values exceeds the frame"
            )));
        }
        let mut out = Vec::with_capacity(count);
        for _ in 0..count {
            out.push(self.f64()?);
        }
        Ok(out)
    }

    fn u64_array(&mut self) -> Result<Vec<u64>, ProtocolError> {
        let count = self.u32()? as usize;
        if count * 8 > self.buf.len() - self.pos {
            return Err(ProtocolError::Malformed(format!(
                "u64 array of {count} values exceeds the frame"
            )));
        }
        let mut out = Vec::with_capacity(count);
        for _ in 0..count {
            out.push(self.u64()?);
        }
        Ok(out)
    }

    fn finish(self) -> Result<(), ProtocolError> {
        if self.pos != self.buf.len() {
            return Err(ProtocolError::Malformed(format!(
                "{} trailing bytes after the payload",
                self.buf.len() - self.pos
            )));
        }
        Ok(())
    }
}

fn put_u16(buf: &mut Vec<u8>, v: u16) {
    buf.extend_from_slice(&v.to_le_bytes());
}

fn put_u32(buf: &mut Vec<u8>, v: u32) {
    buf.extend_from_slice(&v.to_le_bytes());
}

fn put_u64(buf: &mut Vec<u8>, v: u64) {
    buf.extend_from_slice(&v.to_le_bytes());
}

fn put_f64(buf: &mut Vec<u8>, v: f64) {
    buf.extend_from_slice(&v.to_le_bytes());
}

fn put_string(buf: &mut Vec<u8>, s: &str) -> Result<(), ProtocolError> {
    let len: u16 = s.len().try_into().map_err(|_| {
        ProtocolError::Malformed(format!("string of {} bytes (max 65535)", s.len()))
    })?;
    put_u16(buf, len);
    buf.extend_from_slice(s.as_bytes());
    Ok(())
}

fn put_blob(buf: &mut Vec<u8>, s: &str) -> Result<(), ProtocolError> {
    let len: u32 = s
        .len()
        .try_into()
        .map_err(|_| ProtocolError::Malformed("blob too long for u32 length".into()))?;
    put_u32(buf, len);
    buf.extend_from_slice(s.as_bytes());
    Ok(())
}

fn put_f64_array(buf: &mut Vec<u8>, values: &[f64]) -> Result<(), ProtocolError> {
    let count: u32 = values
        .len()
        .try_into()
        .map_err(|_| ProtocolError::Malformed("array too long for u32 count".into()))?;
    put_u32(buf, count);
    for &v in values {
        put_f64(buf, v);
    }
    Ok(())
}

fn put_u64_array(buf: &mut Vec<u8>, values: &[u64]) -> Result<(), ProtocolError> {
    let count: u32 = values
        .len()
        .try_into()
        .map_err(|_| ProtocolError::Malformed("array too long for u32 count".into()))?;
    put_u32(buf, count);
    for &v in values {
        put_u64(buf, v);
    }
    Ok(())
}

// ---------------------------------------------------------------------------
// Encode / decode
// ---------------------------------------------------------------------------

fn payload(opcode: u8) -> Vec<u8> {
    vec![PROTOCOL_VERSION, opcode]
}

/// Encodes a request into a frame payload (version + opcode + body).
///
/// # Errors
///
/// Returns [`ProtocolError::Malformed`] when a field exceeds its wire
/// representation (oversized strings or arrays).
pub fn encode_request(request: &Request) -> Result<Vec<u8>, ProtocolError> {
    Ok(match request {
        Request::Query { tenant, spec } => {
            let mut buf = payload(op::QUERY);
            put_string(&mut buf, tenant)?;
            put_f64(&mut buf, spec.epsilon);
            buf.push(u8::from(spec.count_only) | (u8::from(spec.collect_stats) << 1));
            put_u32(
                &mut buf,
                spec.limit
                    .map_or(0, |l| l.min(u32::MAX as usize - 1) as u32 + 1),
            );
            put_u32(&mut buf, spec.deadline_ms.map_or(0, |d| d.max(1)));
            put_f64_array(&mut buf, &spec.values)?;
            buf
        }
        Request::Append { tenant, values } => {
            let mut buf = payload(op::APPEND);
            put_string(&mut buf, tenant)?;
            put_f64_array(&mut buf, values)?;
            buf
        }
        Request::CreateTenant {
            tenant,
            method,
            subsequence_len,
            initial,
        } => {
            let mut buf = payload(op::CREATE_TENANT);
            put_string(&mut buf, tenant)?;
            put_string(&mut buf, method.label())?;
            put_u64(&mut buf, *subsequence_len as u64);
            put_f64_array(&mut buf, initial)?;
            buf
        }
        Request::Stats { tenant } => {
            let mut buf = payload(op::STATS);
            put_string(&mut buf, tenant.as_deref().unwrap_or(""))?;
            buf
        }
        Request::Checkpoint { tenant } => {
            let mut buf = payload(op::CHECKPOINT);
            put_string(&mut buf, tenant)?;
            buf
        }
        Request::Metrics => payload(op::METRICS),
        Request::Trace { limit } => {
            let mut buf = payload(op::TRACE);
            put_u32(&mut buf, *limit);
            buf
        }
        Request::Shutdown => payload(op::SHUTDOWN),
    })
}

/// Decodes a frame payload into a request.
///
/// # Errors
///
/// [`ProtocolError::VersionMismatch`] / [`ProtocolError::Malformed`].
pub fn decode_request(buf: &[u8]) -> Result<Request, ProtocolError> {
    let mut cursor = Cursor::new(buf);
    let version = cursor.u8()?;
    if version != PROTOCOL_VERSION {
        return Err(ProtocolError::VersionMismatch { got: version });
    }
    let opcode = cursor.u8()?;
    let request = match opcode {
        op::QUERY => {
            let tenant = cursor.string()?;
            let epsilon = cursor.f64()?;
            let flags = cursor.u8()?;
            let limit_raw = cursor.u32()?;
            let deadline_raw = cursor.u32()?;
            let values = cursor.f64_array()?;
            Request::Query {
                tenant,
                spec: QuerySpec {
                    values,
                    epsilon,
                    limit: (limit_raw > 0).then(|| limit_raw as usize - 1),
                    count_only: flags & 1 != 0,
                    collect_stats: flags & 2 != 0,
                    deadline_ms: (deadline_raw > 0).then_some(deadline_raw),
                },
            }
        }
        op::APPEND => Request::Append {
            tenant: cursor.string()?,
            values: cursor.f64_array()?,
        },
        op::CREATE_TENANT => {
            let tenant = cursor.string()?;
            let method_label = cursor.string()?;
            let method = method_label
                .parse::<Method>()
                .map_err(|e| ProtocolError::Malformed(e.to_string()))?;
            let subsequence_len = cursor.u64()? as usize;
            let initial = cursor.f64_array()?;
            Request::CreateTenant {
                tenant,
                method,
                subsequence_len,
                initial,
            }
        }
        op::STATS => {
            let tenant = cursor.string()?;
            Request::Stats {
                tenant: (!tenant.is_empty()).then_some(tenant),
            }
        }
        op::CHECKPOINT => Request::Checkpoint {
            tenant: cursor.string()?,
        },
        op::METRICS => Request::Metrics,
        op::TRACE => Request::Trace {
            limit: cursor.u32()?,
        },
        op::SHUTDOWN => Request::Shutdown,
        other => {
            return Err(ProtocolError::Malformed(format!(
                "unknown request opcode {other:#04x}"
            )))
        }
    };
    cursor.finish()?;
    Ok(request)
}

fn put_latency(buf: &mut Vec<u8>, latency: &WireLatency) {
    put_u64(buf, latency.count);
    put_f64(buf, latency.mean);
    put_f64(buf, latency.p50);
    put_f64(buf, latency.p95);
    put_f64(buf, latency.p99);
}

fn read_latency(cursor: &mut Cursor<'_>) -> Result<WireLatency, ProtocolError> {
    Ok(WireLatency {
        count: cursor.u64()?,
        mean: cursor.f64()?,
        p50: cursor.f64()?,
        p95: cursor.f64()?,
        p99: cursor.f64()?,
    })
}

/// Encodes a response into a frame payload.
///
/// # Errors
///
/// Returns [`ProtocolError::Malformed`] for fields exceeding their wire
/// representation.
pub fn encode_response(response: &Response) -> Result<Vec<u8>, ProtocolError> {
    Ok(match response {
        Response::Error { code, message } => {
            let mut buf = payload(op::ERROR);
            buf.push(*code as u8);
            put_string(&mut buf, message)?;
            buf
        }
        Response::Query(reply) => {
            let mut buf = payload(op::QUERY_OK);
            put_string(&mut buf, &reply.method)?;
            put_u64(&mut buf, reply.match_count);
            put_u32(&mut buf, reply.threads_used);
            put_u64(&mut buf, reply.query_time_us);
            put_u64_array(&mut buf, &reply.positions)?;
            match &reply.stats {
                None => buf.push(0),
                Some(stats) => {
                    buf.push(1);
                    put_u64(&mut buf, stats.candidates_generated);
                    put_u64(&mut buf, stats.candidates_verified);
                    put_u64(&mut buf, stats.nodes_visited);
                    put_u64(&mut buf, stats.nodes_pruned);
                    put_u64(&mut buf, stats.filter_time_us);
                    put_u64(&mut buf, stats.verify_time_us);
                }
            }
            buf
        }
        Response::Append {
            new_len,
            windows_indexed,
        } => {
            let mut buf = payload(op::APPEND_OK);
            put_u64(&mut buf, *new_len);
            put_u64(&mut buf, *windows_indexed);
            buf
        }
        Response::Created { ready, len } => {
            let mut buf = payload(op::CREATED);
            buf.push(u8::from(*ready));
            put_u64(&mut buf, *len);
            buf
        }
        Response::Stats(tenants) => {
            let mut buf = payload(op::STATS_OK);
            let count: u16 = tenants
                .len()
                .try_into()
                .map_err(|_| ProtocolError::Malformed("too many tenants for one frame".into()))?;
            put_u16(&mut buf, count);
            for t in tenants {
                put_string(&mut buf, &t.name)?;
                put_string(&mut buf, &t.method)?;
                put_u64(&mut buf, t.subsequence_len);
                put_u64(&mut buf, t.series_len);
                buf.push(u8::from(t.ready));
                put_u64(&mut buf, t.points_appended);
                put_u64(&mut buf, t.append_calls);
                put_u64(&mut buf, t.windows_indexed);
                put_u64(&mut buf, t.store_time_us);
                put_u64(&mut buf, t.maintain_time_us);
                put_u64(&mut buf, t.queries);
                put_latency(&mut buf, &t.latency_ms);
                put_u64(&mut buf, t.wal_appends);
                put_u64(&mut buf, t.wal_fsyncs);
                put_u64(&mut buf, t.wal_fsyncs_saved);
                put_u64(&mut buf, t.wal_max_batch);
                put_u64(&mut buf, t.wal_checkpoints);
                put_u64(&mut buf, t.wal_recovery_tail);
                put_latency(&mut buf, &t.fsync_ms);
                put_u64(&mut buf, t.checkpoint_lag_records);
                put_u64(&mut buf, t.checkpoint_lag_bytes);
                buf.push(u8::from(t.checkpoint_stuck));
            }
            buf
        }
        Response::Checkpointed { covered } => {
            let mut buf = payload(op::CHECKPOINT_OK);
            put_u64(&mut buf, *covered);
            buf
        }
        Response::Metrics { text } => {
            let mut buf = payload(op::METRICS_OK);
            put_blob(&mut buf, text)?;
            buf
        }
        Response::Traces { text } => {
            let mut buf = payload(op::TRACE_OK);
            put_blob(&mut buf, text)?;
            buf
        }
        Response::ShuttingDown => payload(op::SHUTTING_DOWN),
    })
}

/// Decodes a frame payload into a response.
///
/// # Errors
///
/// [`ProtocolError::VersionMismatch`] / [`ProtocolError::Malformed`].
pub fn decode_response(buf: &[u8]) -> Result<Response, ProtocolError> {
    let mut cursor = Cursor::new(buf);
    let version = cursor.u8()?;
    if version != PROTOCOL_VERSION {
        return Err(ProtocolError::VersionMismatch { got: version });
    }
    let opcode = cursor.u8()?;
    let response = match opcode {
        op::ERROR => {
            let code = ErrorCode::from_u8(cursor.u8()?)?;
            let message = cursor.string()?;
            Response::Error { code, message }
        }
        op::QUERY_OK => {
            let method = cursor.string()?;
            let match_count = cursor.u64()?;
            let threads_used = cursor.u32()?;
            let query_time_us = cursor.u64()?;
            let positions = cursor.u64_array()?;
            let stats = match cursor.u8()? {
                0 => None,
                1 => Some(WireSearchStats {
                    candidates_generated: cursor.u64()?,
                    candidates_verified: cursor.u64()?,
                    nodes_visited: cursor.u64()?,
                    nodes_pruned: cursor.u64()?,
                    filter_time_us: cursor.u64()?,
                    verify_time_us: cursor.u64()?,
                }),
                other => {
                    return Err(ProtocolError::Malformed(format!(
                        "bad stats marker {other}"
                    )))
                }
            };
            Response::Query(QueryReply {
                method,
                positions,
                match_count,
                threads_used,
                query_time_us,
                stats,
            })
        }
        op::APPEND_OK => Response::Append {
            new_len: cursor.u64()?,
            windows_indexed: cursor.u64()?,
        },
        op::CREATED => {
            let ready = cursor.u8()? != 0;
            let len = cursor.u64()?;
            Response::Created { ready, len }
        }
        op::STATS_OK => {
            let count = cursor.u16()? as usize;
            let mut tenants = Vec::with_capacity(count.min(1024));
            for _ in 0..count {
                tenants.push(WireTenantStats {
                    name: cursor.string()?,
                    method: cursor.string()?,
                    subsequence_len: cursor.u64()?,
                    series_len: cursor.u64()?,
                    ready: cursor.u8()? != 0,
                    points_appended: cursor.u64()?,
                    append_calls: cursor.u64()?,
                    windows_indexed: cursor.u64()?,
                    store_time_us: cursor.u64()?,
                    maintain_time_us: cursor.u64()?,
                    queries: cursor.u64()?,
                    latency_ms: read_latency(&mut cursor)?,
                    wal_appends: cursor.u64()?,
                    wal_fsyncs: cursor.u64()?,
                    wal_fsyncs_saved: cursor.u64()?,
                    wal_max_batch: cursor.u64()?,
                    wal_checkpoints: cursor.u64()?,
                    wal_recovery_tail: cursor.u64()?,
                    fsync_ms: read_latency(&mut cursor)?,
                    checkpoint_lag_records: cursor.u64()?,
                    checkpoint_lag_bytes: cursor.u64()?,
                    checkpoint_stuck: cursor.u8()? != 0,
                });
            }
            Response::Stats(tenants)
        }
        op::CHECKPOINT_OK => Response::Checkpointed {
            covered: cursor.u64()?,
        },
        op::METRICS_OK => Response::Metrics {
            text: cursor.blob()?,
        },
        op::TRACE_OK => Response::Traces {
            text: cursor.blob()?,
        },
        op::SHUTTING_DOWN => Response::ShuttingDown,
        other => {
            return Err(ProtocolError::Malformed(format!(
                "unknown response opcode {other:#04x}"
            )))
        }
    };
    cursor.finish()?;
    Ok(response)
}

// ---------------------------------------------------------------------------
// Framing I/O
// ---------------------------------------------------------------------------

/// Writes one frame (length prefix + payload) and flushes.
///
/// # Errors
///
/// [`ProtocolError::FrameTooLarge`] for an oversized payload; I/O errors.
pub fn write_frame<W: Write>(writer: &mut W, frame_payload: &[u8]) -> Result<(), ProtocolError> {
    let len: u32 = frame_payload
        .len()
        .try_into()
        .map_err(|_| ProtocolError::FrameTooLarge { claimed: u32::MAX })?;
    if len > MAX_FRAME_BYTES {
        return Err(ProtocolError::FrameTooLarge { claimed: len });
    }
    writer.write_all(&len.to_le_bytes())?;
    writer.write_all(frame_payload)?;
    writer.flush()?;
    Ok(())
}

/// Reads one frame's payload.  Returns `Ok(None)` on a clean EOF *before*
/// the length prefix (the peer closed between requests); a tear mid-frame
/// is an error.
///
/// # Errors
///
/// [`ProtocolError::FrameTooLarge`] for a hostile length prefix; I/O
/// errors (including timeouts set on the underlying socket).
pub fn read_frame<R: Read>(reader: &mut R) -> Result<Option<Vec<u8>>, ProtocolError> {
    read_frame_from(reader, [0u8; 4], 0)
}

/// Like [`read_frame`], but with the first byte of the length prefix
/// already consumed by the caller.  Servers idle-wait by reading a single
/// byte under a short timeout (so a poll timeout never desynchronises
/// framing) and hand that byte here once a frame starts arriving.
///
/// # Errors
///
/// As [`read_frame`]; a clean EOF is impossible here (a prefix byte was
/// already read), so it reports `connection closed mid length prefix`.
pub fn read_frame_after<R: Read>(
    reader: &mut R,
    first: u8,
) -> Result<Option<Vec<u8>>, ProtocolError> {
    let mut len_buf = [0u8; 4];
    len_buf[0] = first;
    read_frame_from(reader, len_buf, 1)
}

fn read_frame_from<R: Read>(
    reader: &mut R,
    mut len_buf: [u8; 4],
    mut filled: usize,
) -> Result<Option<Vec<u8>>, ProtocolError> {
    while filled < 4 {
        let n = reader.read(&mut len_buf[filled..])?;
        if n == 0 {
            if filled == 0 {
                return Ok(None);
            }
            return Err(ProtocolError::Malformed(
                "connection closed mid length prefix".into(),
            ));
        }
        filled += n;
    }
    let len = u32::from_le_bytes(len_buf);
    if len > MAX_FRAME_BYTES {
        return Err(ProtocolError::FrameTooLarge { claimed: len });
    }
    let mut frame_payload = vec![0u8; len as usize];
    reader.read_exact(&mut frame_payload)?;
    Ok(Some(frame_payload))
}

/// Milliseconds → [`Duration`] helper used for wire deadline budgets.
#[must_use]
pub fn deadline_from_ms(ms: u32) -> Duration {
    Duration::from_millis(u64::from(ms))
}

#[cfg(test)]
mod tests {
    use super::*;

    fn round_trip_request(request: &Request) -> Request {
        decode_request(&encode_request(request).unwrap()).unwrap()
    }

    fn round_trip_response(response: &Response) -> Response {
        decode_response(&encode_response(response).unwrap()).unwrap()
    }

    #[test]
    fn requests_round_trip() {
        let requests = [
            Request::Query {
                tenant: "alpha".into(),
                spec: QuerySpec {
                    values: vec![1.5, -2.25, 0.0],
                    epsilon: 0.125,
                    limit: Some(10),
                    count_only: true,
                    collect_stats: true,
                    deadline_ms: Some(250),
                },
            },
            Request::Query {
                tenant: "t".into(),
                spec: QuerySpec::new(vec![0.5; 64], 0.1),
            },
            Request::Append {
                tenant: "beta-2".into(),
                values: (0..100).map(|i| i as f64 * 0.5).collect(),
            },
            Request::CreateTenant {
                tenant: "gamma_3".into(),
                method: Method::TsIndex,
                subsequence_len: 128,
                initial: vec![],
            },
            Request::Stats { tenant: None },
            Request::Stats {
                tenant: Some("alpha".into()),
            },
            Request::Checkpoint {
                tenant: "alpha".into(),
            },
            Request::Metrics,
            Request::Trace { limit: 0 },
            Request::Trace { limit: 32 },
            Request::Shutdown,
        ];
        for request in &requests {
            assert_eq!(&round_trip_request(request), request);
        }
    }

    #[test]
    fn limit_zero_is_distinct_from_no_limit() {
        // limit: Some(0) ("count but return nothing") must survive the
        // wire distinctly from limit: None ("return everything").
        for limit in [None, Some(0), Some(1), Some(4096)] {
            let request = Request::Query {
                tenant: "t".into(),
                spec: QuerySpec {
                    limit,
                    ..QuerySpec::new(vec![1.0], 0.5)
                },
            };
            match round_trip_request(&request) {
                Request::Query { spec, .. } => assert_eq!(spec.limit, limit),
                other => panic!("wrong variant {other:?}"),
            }
        }
    }

    #[test]
    fn responses_round_trip() {
        let responses = [
            Response::Error {
                code: ErrorCode::Overloaded,
                message: "queue full".into(),
            },
            Response::Query(QueryReply {
                method: "TS-Index".into(),
                positions: vec![0, 17, 4096],
                match_count: 3,
                threads_used: 4,
                query_time_us: 1234,
                stats: Some(WireSearchStats {
                    candidates_generated: 100,
                    candidates_verified: 40,
                    nodes_visited: 12,
                    nodes_pruned: 7,
                    filter_time_us: 800,
                    verify_time_us: 400,
                }),
            }),
            Response::Query(QueryReply {
                method: "Sweepline".into(),
                positions: vec![],
                match_count: 0,
                threads_used: 1,
                query_time_us: 0,
                stats: None,
            }),
            Response::Append {
                new_len: 10_000,
                windows_indexed: 512,
            },
            Response::Created {
                ready: false,
                len: 12,
            },
            Response::Stats(vec![WireTenantStats {
                name: "alpha".into(),
                method: "ts-index".into(),
                subsequence_len: 128,
                series_len: 10_000,
                ready: true,
                points_appended: 5_000,
                append_calls: 12,
                windows_indexed: 5_000,
                store_time_us: 900,
                maintain_time_us: 1_500,
                queries: 77,
                latency_ms: WireLatency {
                    count: 77,
                    mean: 1.5,
                    p50: 1.2,
                    p95: 3.4,
                    p99: 9.9,
                },
                wal_appends: 12,
                wal_fsyncs: 5,
                wal_fsyncs_saved: 7,
                wal_max_batch: 4,
                wal_checkpoints: 2,
                wal_recovery_tail: 321,
                fsync_ms: WireLatency {
                    count: 5,
                    mean: 0.8,
                    p50: 0.7,
                    p95: 1.9,
                    p99: 2.5,
                },
                checkpoint_lag_records: 42,
                checkpoint_lag_bytes: 8_192,
                checkpoint_stuck: true,
            }]),
            Response::Stats(vec![]),
            Response::Checkpointed { covered: 4096 },
            Response::Metrics {
                text: "# TYPE twin_requests_total counter\ntwin_requests_total 7\n".into(),
            },
            Response::Metrics {
                text: String::new(),
            },
            Response::Traces {
                text: "trace id=1 op=query tenant=alpha total_ms=5.125\n".into(),
            },
            Response::ShuttingDown,
        ];
        for response in &responses {
            assert_eq!(&round_trip_response(response), response);
        }
    }

    #[test]
    fn metrics_blob_outgrows_the_u16_string_cap() {
        // A realistic exposition easily exceeds 65535 bytes; the u32 blob
        // must carry it where put_string would fail.
        let text = "twin_query_duration_ms_bucket{method=\"ts-index\",le=\"1\"} 5\n".repeat(2_000);
        assert!(text.len() > u16::MAX as usize);
        let response = Response::Metrics { text };
        assert_eq!(round_trip_response(&response), response);
    }

    #[test]
    fn every_error_code_round_trips() {
        for code in [
            ErrorCode::BadRequest,
            ErrorCode::NoSuchTenant,
            ErrorCode::TenantExists,
            ErrorCode::NotReady,
            ErrorCode::Overloaded,
            ErrorCode::DeadlineExceeded,
            ErrorCode::ShuttingDown,
            ErrorCode::Internal,
        ] {
            assert_eq!(ErrorCode::from_u8(code as u8).unwrap(), code);
            let response = Response::Error {
                code,
                message: code.to_string(),
            };
            assert_eq!(round_trip_response(&response), response);
        }
        assert!(ErrorCode::from_u8(0).is_err());
        assert!(ErrorCode::from_u8(99).is_err());
    }

    #[test]
    fn malformed_frames_are_rejected() {
        // Wrong version.
        assert!(matches!(
            decode_request(&[9, op::SHUTDOWN]),
            Err(ProtocolError::VersionMismatch { got: 9 })
        ));
        // Unknown opcode.
        assert!(decode_request(&[PROTOCOL_VERSION, 0x7f]).is_err());
        assert!(decode_response(&[PROTOCOL_VERSION, 0x01]).is_err());
        // Truncated body.
        let mut good = encode_request(&Request::Append {
            tenant: "t".into(),
            values: vec![1.0, 2.0],
        })
        .unwrap();
        good.truncate(good.len() - 3);
        assert!(decode_request(&good).is_err());
        // Trailing garbage.
        let mut padded = encode_request(&Request::Shutdown).unwrap();
        padded.push(0);
        assert!(decode_request(&padded).is_err());
        // Lying array count.
        let mut lying = payload(op::APPEND);
        put_string(&mut lying, "t").unwrap();
        put_u32(&mut lying, 1_000_000);
        assert!(decode_request(&lying).is_err());
    }

    #[test]
    fn framing_round_trips_and_detects_eof() {
        let frame_payload = encode_request(&Request::Stats { tenant: None }).unwrap();
        let mut wire = Vec::new();
        write_frame(&mut wire, &frame_payload).unwrap();
        write_frame(&mut wire, &frame_payload).unwrap();
        let mut reader = &wire[..];
        assert_eq!(read_frame(&mut reader).unwrap().unwrap(), frame_payload);
        assert_eq!(read_frame(&mut reader).unwrap().unwrap(), frame_payload);
        // Clean EOF between frames.
        assert!(read_frame(&mut reader).unwrap().is_none());
        // Tear inside the length prefix is an error, not a clean EOF.
        let mut torn = &wire[..2];
        assert!(read_frame(&mut torn).is_err());
        // Hostile length prefix.
        let huge = (MAX_FRAME_BYTES + 1).to_le_bytes();
        let mut hostile: &[u8] = &huge;
        assert!(matches!(
            read_frame(&mut hostile),
            Err(ProtocolError::FrameTooLarge { .. })
        ));
    }

    #[test]
    fn query_spec_converts_to_twin_query() {
        let spec = QuerySpec {
            values: vec![1.0, 2.0, 3.0],
            epsilon: 0.25,
            limit: Some(5),
            count_only: false,
            collect_stats: true,
            deadline_ms: Some(100),
        };
        let query = spec.to_query();
        assert_eq!(query.values(), &[1.0, 2.0, 3.0]);
        assert_eq!(deadline_from_ms(100), Duration::from_millis(100));
    }
}

//! Offline stand-in for the `memmap2` crate.
//!
//! The build environment has no access to crates.io, so this vendored crate
//! implements exactly the surface the workspace uses: a read-only [`Mmap`]
//! over a [`File`], created with [`Mmap::map`] and dereferencing to `&[u8]`.
//!
//! Fidelity notes relative to upstream `memmap2`:
//!
//! * Only the read-only `Mmap` is provided (no `MmapMut`, no options
//!   builder); the workspace never maps writable.
//! * Upstream declares `Mmap::map` as an `unsafe fn`, because a mapping's
//!   contents may change underneath safe code if the file is concurrently
//!   truncated (later reads fault: `SIGBUS`) or rewritten in place (pages
//!   not yet touched observe the new bytes — `MAP_PRIVATE` only shields
//!   pages already faulted in).  This stand-in exposes a **safe** function
//!   and moves that contract into documentation: the caller must guarantee
//!   the mapped file is never truncated or rewritten in place while the
//!   mapping lives.  This is a deliberate, documented soundness deviation
//!   from upstream, accepted so the storage crate can keep its
//!   `forbid(unsafe_code)`; it is justified in this workspace because the
//!   only consumer (`ts-storage::MmapSeries`) maps series files that are
//!   written once, atomically (temp file + rename — the inode under a live
//!   mapping is never mutated), and documents the same contract to *its*
//!   callers.  Do not use this crate to map files under foreign control.
//! * On non-Unix targets the "mapping" is a plain buffered read of the whole
//!   file: the same API and semantics, without the zero-copy property.

#![warn(missing_docs)]

use std::fs::File;
use std::io;

/// A read-only memory map of an entire file.
///
/// Dereferences to `&[u8]` over the file's bytes.  The mapping is private
/// (copy-on-write), which protects pages this process has **already
/// touched** from in-place rewrites; untouched pages and truncation are not
/// protected — see [`Mmap::map`] for the contract.
pub struct Mmap {
    inner: Inner,
}

impl Mmap {
    /// Maps `file` read-only in its entirety.
    ///
    /// **Contract (checked nowhere — the caller must guarantee it):** the
    /// file must not be truncated or rewritten in place while the mapping
    /// is alive.  Truncation makes later reads through the returned slice
    /// fault (`SIGBUS`); an in-place rewrite changes what not-yet-touched
    /// pages read as.  Upstream `memmap2` marks this constructor `unsafe`
    /// for exactly these reasons; see the crate docs for why this stand-in
    /// exposes it safely and what that trade accepts.
    ///
    /// # Errors
    ///
    /// Returns an I/O error if the file's length cannot be read or the
    /// mapping syscall fails.
    pub fn map(file: &File) -> io::Result<Mmap> {
        Ok(Mmap {
            inner: Inner::map(file)?,
        })
    }

    /// Length of the mapped file in bytes.
    #[must_use]
    pub fn len(&self) -> usize {
        self.inner.as_slice().len()
    }

    /// Returns `true` for a zero-length file.
    #[must_use]
    pub fn is_empty(&self) -> bool {
        self.len() == 0
    }
}

impl std::ops::Deref for Mmap {
    type Target = [u8];

    fn deref(&self) -> &[u8] {
        self.inner.as_slice()
    }
}

impl AsRef<[u8]> for Mmap {
    fn as_ref(&self) -> &[u8] {
        self.inner.as_slice()
    }
}

impl std::fmt::Debug for Mmap {
    fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
        f.debug_struct("Mmap").field("len", &self.len()).finish()
    }
}

#[cfg(unix)]
use unix::Inner;

#[cfg(unix)]
mod unix {
    use std::ffi::c_void;
    use std::fs::File;
    use std::io;
    use std::os::unix::io::AsRawFd;

    // The C library std already links against.  `off_t` is 64-bit on every
    // 64-bit Unix (and on macOS unconditionally); this stand-in does not
    // support 32-bit targets with a 32-bit `off_t`.
    extern "C" {
        fn mmap(
            addr: *mut c_void,
            length: usize,
            prot: i32,
            flags: i32,
            fd: i32,
            offset: i64,
        ) -> *mut c_void;
        fn munmap(addr: *mut c_void, length: usize) -> i32;
    }

    const PROT_READ: i32 = 1;
    const MAP_PRIVATE: i32 = 2;

    /// The raw mapping: base pointer + length.  A zero-length file is
    /// represented without a mapping (`mmap` rejects length 0).
    pub(crate) struct Inner {
        ptr: *mut c_void,
        len: usize,
    }

    // SAFETY: the mapping is read-only and private; the aliased pages are
    // immutable for the lifetime of the mapping (the crate-level contract),
    // so shared access from any thread is sound.
    unsafe impl Send for Inner {}
    // SAFETY: as above — all access is through `&[u8]` reads.
    unsafe impl Sync for Inner {}

    impl Inner {
        pub(crate) fn map(file: &File) -> io::Result<Inner> {
            let len = usize::try_from(file.metadata()?.len())
                .map_err(|_| io::Error::other("file too large to map"))?;
            if len == 0 {
                return Ok(Inner {
                    ptr: std::ptr::null_mut(),
                    len: 0,
                });
            }
            // SAFETY: a fresh private read-only mapping of `len` bytes over
            // an open fd; the kernel validates the fd and length, and the
            // result is checked against MAP_FAILED before use.
            let ptr = unsafe {
                mmap(
                    std::ptr::null_mut(),
                    len,
                    PROT_READ,
                    MAP_PRIVATE,
                    file.as_raw_fd(),
                    0,
                )
            };
            if ptr as isize == -1 {
                return Err(io::Error::last_os_error());
            }
            Ok(Inner { ptr, len })
        }

        pub(crate) fn as_slice(&self) -> &[u8] {
            if self.len == 0 {
                return &[];
            }
            // SAFETY: `ptr` is a live PROT_READ mapping of exactly `len`
            // bytes (checked non-failed at creation, unmapped only in Drop),
            // and the mapped pages are immutable per the crate contract.
            unsafe { std::slice::from_raw_parts(self.ptr.cast::<u8>(), self.len) }
        }
    }

    impl Drop for Inner {
        fn drop(&mut self) {
            if self.len > 0 {
                // SAFETY: unmapping exactly the region returned by mmap;
                // after Drop no slice borrows can exist.
                unsafe {
                    munmap(self.ptr, self.len);
                }
            }
        }
    }
}

#[cfg(not(unix))]
use fallback::Inner;

#[cfg(not(unix))]
mod fallback {
    use std::fs::File;
    use std::io::{self, Read, Seek, SeekFrom};

    /// Portable fallback: the whole file buffered in memory.  Same API and
    /// read semantics as a private mapping, without the zero-copy property.
    pub(crate) struct Inner {
        bytes: Vec<u8>,
    }

    impl Inner {
        pub(crate) fn map(file: &File) -> io::Result<Inner> {
            let mut clone = file.try_clone()?;
            clone.seek(SeekFrom::Start(0))?;
            let mut bytes = Vec::new();
            clone.read_to_end(&mut bytes)?;
            Ok(Inner { bytes })
        }

        pub(crate) fn as_slice(&self) -> &[u8] {
            &self.bytes
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use std::io::Write;

    fn temp_path(name: &str) -> std::path::PathBuf {
        let mut p = std::env::temp_dir();
        p.push(format!("memmap2_standin_{}_{name}", std::process::id()));
        p
    }

    #[test]
    fn maps_file_contents() {
        let path = temp_path("basic");
        let payload: Vec<u8> = (0..=255u8).cycle().take(10_000).collect();
        std::fs::File::create(&path)
            .unwrap()
            .write_all(&payload)
            .unwrap();
        let file = File::open(&path).unwrap();
        let map = Mmap::map(&file).unwrap();
        assert_eq!(map.len(), payload.len());
        assert!(!map.is_empty());
        assert_eq!(&map[..], &payload[..]);
        assert_eq!(map.as_ref()[777], payload[777]);
        assert!(format!("{map:?}").contains("10000"));
        drop(map);
        std::fs::remove_file(&path).ok();
    }

    #[test]
    fn empty_file_maps_to_empty_slice() {
        let path = temp_path("empty");
        std::fs::File::create(&path).unwrap();
        let map = Mmap::map(&File::open(&path).unwrap()).unwrap();
        assert!(map.is_empty());
        assert_eq!(&map[..], &[] as &[u8]);
        std::fs::remove_file(&path).ok();
    }

    #[test]
    fn mapping_is_shareable_across_threads() {
        let path = temp_path("threads");
        let payload = vec![42u8; 4096];
        std::fs::File::create(&path)
            .unwrap()
            .write_all(&payload)
            .unwrap();
        let map = std::sync::Arc::new(Mmap::map(&File::open(&path).unwrap()).unwrap());
        std::thread::scope(|scope| {
            for _ in 0..4 {
                let map = std::sync::Arc::clone(&map);
                scope.spawn(move || {
                    assert!(map.iter().all(|&b| b == 42));
                });
            }
        });
        std::fs::remove_file(&path).ok();
    }
}

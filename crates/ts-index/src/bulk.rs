//! Bottom-up bulk loading.
//!
//! The paper builds the TS-Index by sequential insertion.  Bulk loading is a
//! natural extension (iSAX 2.0 / iSAX2+ add it to the iSAX family, §2): sort
//! the subsequences once by a cheap 1-D key (their mean value), pack sorted
//! runs into fully filled leaves, and then pack nodes level by level until a
//! single root remains.  Construction touches every subsequence once and
//! performs no splits, which makes it substantially faster than repeated
//! top-down insertion; the ablation bench `ablation_bulk` quantifies both the
//! build-time gain and the query-time effect of the different packing.

use ts_core::pipeline::Scratch;
use ts_core::stats::rolling_mean;
use ts_core::Mbts;
use ts_storage::{Result, SeriesStore, StorageError};

use crate::config::TsIndexConfig;
use crate::index::TsIndex;
use crate::node::{Node, NodeId};

impl TsIndex {
    /// Builds the index bottom-up by sorting subsequences on their mean value
    /// and packing them into full leaves.
    ///
    /// The resulting tree answers exactly the same queries as one built with
    /// [`TsIndex::build`]; only the grouping of subsequences into nodes (and
    /// hence pruning efficiency and build time) differs.
    ///
    /// # Errors
    ///
    /// Returns an error when the store has no subsequence of the configured
    /// length and propagates storage failures.
    pub fn build_bulk<S: SeriesStore>(store: &S, config: TsIndexConfig) -> Result<Self> {
        let len = config.subsequence_len;
        let count = store.subsequence_count(len);
        if count == 0 {
            return Err(StorageError::Core(ts_core::TsError::InvalidParameter(
                format!(
                    "series of length {} has no subsequences of length {len}",
                    store.len()
                ),
            )));
        }

        // Sort positions by subsequence mean (one rolling pass over the data).
        let values = store.read(0, store.len())?;
        let means = rolling_mean(&values, len);
        let mut order: Vec<u32> = (0..count as u32).collect();
        order.sort_by(|&a, &b| {
            means[a as usize]
                .partial_cmp(&means[b as usize])
                .unwrap_or(std::cmp::Ordering::Equal)
        });

        let mut index = Self {
            config,
            nodes: Vec::new(),
            root: None,
            entries: count,
        };

        // Pack sorted positions into leaves.
        let mut buf = Scratch::take(len);
        let mut level: Vec<NodeId> = Vec::new();
        for chunk in partition_sizes(count, config.max_capacity, config.min_capacity) {
            let members = &order[chunk.clone()];
            let mut mbts: Option<Mbts> = None;
            for &p in members {
                store.read_into(p as usize, &mut buf)?;
                match &mut mbts {
                    None => mbts = Some(Mbts::from_sequence(&buf).map_err(StorageError::Core)?),
                    Some(m) => m.expand_with_sequence(&buf).map_err(StorageError::Core)?,
                }
            }
            let mbts = mbts.expect("chunk is never empty");
            let id = index.nodes.len();
            index.nodes.push(Node::leaf(mbts, None, members.to_vec()));
            level.push(id);
        }

        // Pack levels upward until a single node remains.
        while level.len() > 1 {
            let mut next_level = Vec::new();
            for chunk in partition_sizes(level.len(), config.max_capacity, config.min_capacity) {
                let children: Vec<NodeId> = level[chunk].to_vec();
                let mut mbts = index.nodes[children[0]].mbts.clone();
                for &c in &children[1..] {
                    let child_mbts = index.nodes[c].mbts.clone();
                    mbts.expand_with_mbts(&child_mbts)
                        .map_err(StorageError::Core)?;
                }
                let id = index.nodes.len();
                index
                    .nodes
                    .push(Node::internal(mbts, None, children.clone()));
                for c in children {
                    index.nodes[c].parent = Some(id);
                }
                next_level.push(id);
            }
            level = next_level;
        }
        index.root = level.first().copied();
        Ok(index)
    }
}

/// Splits `count` items into contiguous chunks of at most `max` items each,
/// making sure that (when `count >= min`) no chunk is smaller than `min`.
fn partition_sizes(count: usize, max: usize, min: usize) -> Vec<std::ops::Range<usize>> {
    if count == 0 {
        return Vec::new();
    }
    if count <= max {
        return std::iter::once(0..count).collect();
    }
    let mut chunks = Vec::new();
    let mut start = 0usize;
    while start < count {
        let remaining = count - start;
        let take = if remaining <= max {
            remaining
        } else if remaining - max < min {
            // Taking a full chunk would leave a runt below the minimum
            // capacity; balance the final two chunks instead.
            remaining - min
        } else {
            max
        };
        chunks.push(start..start + take);
        start += take;
    }
    chunks
}

#[cfg(test)]
mod tests {
    use super::*;
    use ts_data::generators::{insect_like, GeneratorConfig};
    use ts_storage::InMemorySeries;
    use ts_sweep::Sweepline;

    fn store(n: usize) -> InMemorySeries {
        InMemorySeries::new_znormalized(&insect_like(GeneratorConfig::new(n, 41))).unwrap()
    }

    fn config(len: usize) -> TsIndexConfig {
        TsIndexConfig::new(len)
            .unwrap()
            .with_capacities(4, 10)
            .unwrap()
    }

    #[test]
    fn partition_sizes_respects_bounds() {
        for (count, max, min) in [
            (100usize, 10usize, 4usize),
            (7, 10, 4),
            (23, 10, 4),
            (101, 30, 10),
            (11, 10, 4),
        ] {
            let chunks = partition_sizes(count, max, min);
            let total: usize = chunks.iter().map(|c| c.len()).sum();
            assert_eq!(total, count);
            let mut expected_start = 0;
            for c in &chunks {
                assert_eq!(c.start, expected_start, "chunks must be contiguous");
                expected_start = c.end;
                assert!(c.len() <= max);
                if count >= min {
                    assert!(c.len() >= min, "chunk {c:?} below min for count={count}");
                }
            }
        }
        assert!(partition_sizes(0, 10, 4).is_empty());
        assert_eq!(partition_sizes(3, 10, 4), vec![0..3]);
    }

    #[test]
    fn bulk_build_indexes_everything_and_keeps_invariants() {
        let s = store(3_000);
        let idx = TsIndex::build_bulk(&s, config(60)).unwrap();
        assert_eq!(idx.indexed_count(), s.subsequence_count(60));
        assert_eq!(idx.check_invariants(), None);
        assert!(idx.height() > 1);
    }

    #[test]
    fn bulk_build_answers_queries_identically_to_incremental() {
        let s = store(2_500);
        let len = 100;
        let incremental = TsIndex::build(&s, config(len)).unwrap();
        let bulk = TsIndex::build_bulk(&s, config(len)).unwrap();
        let sweep = Sweepline::new();
        for (start, eps) in [(5usize, 0.5), (1_200, 1.0), (2_300, 1.5)] {
            let query = s.read(start, len).unwrap();
            let expected = sweep.search(&s, &query, eps).unwrap();
            assert_eq!(incremental.search(&s, &query, eps).unwrap(), expected);
            assert_eq!(bulk.search(&s, &query, eps).unwrap(), expected);
        }
    }

    #[test]
    fn bulk_build_single_leaf_case() {
        let s = store(70);
        let idx = TsIndex::build_bulk(&s, TsIndexConfig::new(50).unwrap()).unwrap();
        assert_eq!(idx.height(), 1);
        assert_eq!(idx.check_invariants(), None);
        let q = s.read(3, 50).unwrap();
        assert!(idx.search(&s, &q, 0.1).unwrap().contains(&3));
    }
}

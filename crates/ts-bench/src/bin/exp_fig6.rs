//! Figure 6: average query time for varying ε when every subsequence is
//! z-normalised individually.  KV-Index is inapplicable in this regime (every
//! subsequence mean is zero), so only iSAX and TS-Index are compared —
//! exactly as in the paper.
//!
//! Besides the printed table, the run emits a machine-readable
//! `BENCH_fig6.json` (including per-method `SearchStats`).

use ts_bench::{
    build_engines, epsilon_grid, generate, measure_grid, print_header, DatasetReport, FigureReport,
    HarnessOptions,
};
use twin_search::{Dataset, Method, Normalization, QueryWorkload};

fn main() {
    let options = HarnessOptions::from_args();
    let normalization = Normalization::PerSubsequence;
    let len = 100;
    let methods = [Method::Isax, Method::TsIndex];
    let mut report = FigureReport::new(
        "fig6",
        "query time vs epsilon (per-subsequence z-normalisation)",
        &options,
    );

    for dataset in Dataset::ALL {
        let series = generate(dataset, &options);
        let engines = build_engines(&series, &methods, len, normalization);
        let workload =
            QueryWorkload::sample(engines[0].store(), len, options.queries, 6, normalization)
                .expect("valid workload");

        print_header(
            "Figure 6: query time vs epsilon (per-subsequence z-normalisation)",
            dataset,
            &options,
            "param = epsilon; KV-Index inapplicable in this regime",
        );
        let rows = measure_grid(&engines, &workload, epsilon_grid(dataset, normalization));
        report.datasets.push(DatasetReport {
            dataset: dataset.name().to_string(),
            series_len: series.len(),
            rows,
        });
        println!();
    }
    report.write();
    println!("expected shape (paper Fig. 6): results mirror Figure 4 — per-subsequence normalisation does not change the ranking; TS-Index beats iSAX at every epsilon.");
}

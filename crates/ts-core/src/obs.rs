//! Process-global observability: a lock-free metrics registry and a
//! lightweight structured tracing layer.
//!
//! Every long-lived component in the workspace — the admission queue, the
//! work-stealing executor, the block cache, the WAL and the four searchers —
//! reports into one process-wide registry of named, labelled metrics:
//!
//! * [`Counter`] — a monotonically increasing `u64` (requests served,
//!   cache hits, rejections by reason).
//! * [`Gauge`] — a signed instantaneous value (queue depth, checkpoint lag).
//! * [`Histogram`] — a fixed-bucket latency/size distribution with a
//!   cumulative-bucket Prometheus rendering (query stage latencies, fsync
//!   times, group-commit batch sizes).
//!
//! **Hot-path cost.** Recording is an atomic add on a pre-resolved handle —
//! no locks, no allocation.  The registry itself (a mutex-guarded map) is
//! touched only when a handle is first resolved; call sites on hot paths
//! cache the `&'static` handle (e.g. in a [`std::sync::OnceLock`]) so steady
//! state never sees the registry lock.  Handles are interned for the process
//! lifetime: resolving the same name + label set twice returns the same
//! handle, so increments from independent call sites aggregate.
//!
//! **Global kill switch.** [`set_enabled`] turns all recording into a single
//! relaxed load + branch, which is how the fig4 bench measures the metrics
//! overhead on the hot path (the acceptance bound is ≤ 5%).
//!
//! **Exposition.** [`render_prometheus`] renders the whole registry in the
//! Prometheus text format (`# TYPE` headers, `name{label="v"} value` lines,
//! cumulative `_bucket`/`_sum`/`_count` series for histograms).  The serve
//! daemon exposes this through the protocol-v3 `METRICS` opcode; metric
//! names and label conventions are documented in `docs/observability.md`.
//!
//! **Tracing.** A [`Trace`] carries a process-unique id (minted at admission
//! via [`next_trace_id`]) and one [`Span`] per pipeline stage
//! (admission-wait → dispatch → filter → verify → fsync).  Completed traces
//! land in a bounded ring buffer ([`record_trace`] / [`recent_traces`])
//! served by the protocol-v3 `TRACE` opcode; the daemon additionally mirrors
//! traces over its `--slow-query-ms` threshold to a slow-query log.

use std::collections::{HashMap, VecDeque};
use std::sync::atomic::{AtomicBool, AtomicI64, AtomicU64, Ordering};
use std::sync::{Mutex, OnceLock};

/// Global recording switch (see [`set_enabled`]).
static ENABLED: AtomicBool = AtomicBool::new(true);

/// Monotonic source of process-unique trace ids.
static TRACE_IDS: AtomicU64 = AtomicU64::new(1);

/// Completed traces retained for the `TRACE` opcode (newest evicts oldest).
const TRACE_RING_CAPACITY: usize = 256;

/// Default histogram bucket upper bounds, chosen for millisecond latencies
/// (the unit every `_ms` histogram in the workspace records).  An implicit
/// `+Inf` bucket always follows the last bound.
pub const DEFAULT_MS_BUCKETS: [f64; 12] = [
    0.01, 0.05, 0.1, 0.5, 1.0, 5.0, 10.0, 50.0, 100.0, 500.0, 1000.0, 5000.0,
];

/// Enables or disables all metric recording and trace retention.
///
/// Disabled recording is a single relaxed atomic load and branch per call —
/// the path the fig4 bench times to bound the observability overhead.
/// Reading ([`Counter::get`], [`render_prometheus`], …) is unaffected.
pub fn set_enabled(on: bool) {
    ENABLED.store(on, Ordering::Relaxed);
}

/// Whether metric recording is currently enabled.
#[must_use]
pub fn enabled() -> bool {
    ENABLED.load(Ordering::Relaxed)
}

/// Mints a process-unique trace id (monotone from 1; never 0, so 0 can mean
/// "untraced" in wire formats).
#[must_use]
pub fn next_trace_id() -> u64 {
    TRACE_IDS.fetch_add(1, Ordering::Relaxed)
}

/// A monotonically increasing counter.
#[derive(Debug, Default)]
pub struct Counter {
    value: AtomicU64,
}

impl Counter {
    /// Increments by one.
    pub fn inc(&self) {
        self.add(1);
    }

    /// Increments by `n`.
    pub fn add(&self, n: u64) {
        if enabled() {
            self.value.fetch_add(n, Ordering::Relaxed);
        }
    }

    /// Current value.
    #[must_use]
    pub fn get(&self) -> u64 {
        self.value.load(Ordering::Relaxed)
    }
}

/// A signed instantaneous value (queue depth, lag, a 0/1 health flag).
#[derive(Debug, Default)]
pub struct Gauge {
    value: AtomicI64,
}

impl Gauge {
    /// Sets the gauge to `v`.
    pub fn set(&self, v: i64) {
        if enabled() {
            self.value.store(v, Ordering::Relaxed);
        }
    }

    /// Adds `delta` (may be negative).
    pub fn add(&self, delta: i64) {
        if enabled() {
            self.value.fetch_add(delta, Ordering::Relaxed);
        }
    }

    /// Current value.
    #[must_use]
    pub fn get(&self) -> i64 {
        self.value.load(Ordering::Relaxed)
    }
}

/// A fixed-bucket histogram: per-bucket counts plus a running sum and count,
/// rendered cumulatively (Prometheus `le` semantics) by
/// [`render_prometheus`].
#[derive(Debug)]
pub struct Histogram {
    /// Upper bounds, ascending; an implicit `+Inf` bucket follows.
    bounds: Vec<f64>,
    /// One count per bound, plus the final `+Inf` slot.
    counts: Vec<AtomicU64>,
    /// Sum of observed values, stored as `f64` bits (CAS loop: observations
    /// are rare enough that contention is noise, and `AtomicF64` does not
    /// exist in std).
    sum_bits: AtomicU64,
    /// Number of observations.
    count: AtomicU64,
}

impl Histogram {
    fn new(bounds: &[f64]) -> Self {
        debug_assert!(
            bounds.windows(2).all(|w| w[0] < w[1]),
            "histogram bounds must be strictly ascending"
        );
        let mut counts = Vec::with_capacity(bounds.len() + 1);
        counts.resize_with(bounds.len() + 1, AtomicU64::default);
        Histogram {
            bounds: bounds.to_vec(),
            counts,
            sum_bits: AtomicU64::new(0.0_f64.to_bits()),
            count: AtomicU64::new(0),
        }
    }

    /// Records one observation.
    pub fn observe(&self, v: f64) {
        self.observe_n(v, 1);
    }

    /// Records `n` observations of the same value `v` with one round of
    /// atomics — the bulk form hot loops use to flush locally accumulated
    /// per-bucket counts (e.g. the verification pipeline's abandon-depth
    /// histogram) instead of paying one `fetch_add` round per sample.
    pub fn observe_n(&self, v: f64, n: u64) {
        if n == 0 || !enabled() {
            return;
        }
        let slot = self.bounds.partition_point(|&b| b < v);
        self.counts[slot].fetch_add(n, Ordering::Relaxed);
        self.count.fetch_add(n, Ordering::Relaxed);
        let v = v * n as f64;
        let mut current = self.sum_bits.load(Ordering::Relaxed);
        loop {
            let next = (f64::from_bits(current) + v).to_bits();
            match self.sum_bits.compare_exchange_weak(
                current,
                next,
                Ordering::Relaxed,
                Ordering::Relaxed,
            ) {
                Ok(_) => break,
                Err(observed) => current = observed,
            }
        }
    }

    /// Number of observations.
    #[must_use]
    pub fn count(&self) -> u64 {
        self.count.load(Ordering::Relaxed)
    }

    /// Sum of observed values.
    #[must_use]
    pub fn sum(&self) -> f64 {
        f64::from_bits(self.sum_bits.load(Ordering::Relaxed))
    }

    /// `(upper_bound, cumulative_count)` per bucket, ending with
    /// `(+Inf, total)` — the Prometheus `le` view.
    #[must_use]
    pub fn cumulative_buckets(&self) -> Vec<(f64, u64)> {
        let mut running = 0u64;
        let mut out = Vec::with_capacity(self.bounds.len() + 1);
        for (i, count) in self.counts.iter().enumerate() {
            running += count.load(Ordering::Relaxed);
            let bound = self.bounds.get(i).copied().unwrap_or(f64::INFINITY);
            out.push((bound, running));
        }
        out
    }
}

/// A registered metric of any kind.
#[derive(Debug, Clone, Copy)]
enum Handle {
    Counter(&'static Counter),
    Gauge(&'static Gauge),
    Histogram(&'static Histogram),
}

impl Handle {
    fn kind(&self) -> &'static str {
        match self {
            Handle::Counter(_) => "counter",
            Handle::Gauge(_) => "gauge",
            Handle::Histogram(_) => "histogram",
        }
    }
}

/// One registry entry: name, sorted labels and the live handle.
struct Entry {
    name: String,
    labels: Vec<(String, String)>,
    handle: Handle,
}

/// The process-global registry.  The mutex guards registration and
/// rendering only; recorded values live in the leaked atomics behind the
/// handles and are never touched under this lock.
struct Registry {
    by_key: HashMap<String, Handle>,
    entries: Vec<Entry>,
}

fn registry() -> &'static Mutex<Registry> {
    static REGISTRY: OnceLock<Mutex<Registry>> = OnceLock::new();
    REGISTRY.get_or_init(|| {
        Mutex::new(Registry {
            by_key: HashMap::new(),
            entries: Vec::new(),
        })
    })
}

fn label_key(labels: &[(&str, &str)]) -> Vec<(String, String)> {
    let mut owned: Vec<(String, String)> = labels
        .iter()
        .map(|(k, v)| ((*k).to_string(), (*v).to_string()))
        .collect();
    owned.sort();
    owned
}

fn full_key(name: &str, labels: &[(String, String)]) -> String {
    let mut key = String::from(name);
    for (k, v) in labels {
        key.push('\u{1}');
        key.push_str(k);
        key.push('\u{2}');
        key.push_str(v);
    }
    key
}

fn resolve<F>(name: &str, labels: &[(&str, &str)], create: F) -> Handle
where
    F: FnOnce() -> Handle,
{
    let labels = label_key(labels);
    let key = full_key(name, &labels);
    let mut registry = registry().lock().unwrap_or_else(|e| e.into_inner());
    if let Some(handle) = registry.by_key.get(&key) {
        return *handle;
    }
    let handle = create();
    registry.by_key.insert(key, handle);
    registry.entries.push(Entry {
        name: name.to_string(),
        labels,
        handle,
    });
    handle
}

/// Resolves (registering on first use) the counter `name` with `labels`.
///
/// # Panics
///
/// Panics if the same name + label set was previously registered as a
/// different metric kind — a programming error, not a runtime condition.
#[must_use]
pub fn counter(name: &str, labels: &[(&str, &str)]) -> &'static Counter {
    match resolve(name, labels, || {
        Handle::Counter(Box::leak(Box::new(Counter::default())))
    }) {
        Handle::Counter(c) => c,
        other => panic!("metric '{name}' already registered as a {}", other.kind()),
    }
}

/// Resolves (registering on first use) the gauge `name` with `labels`.
///
/// # Panics
///
/// Panics on a metric-kind conflict, as for [`counter`].
#[must_use]
pub fn gauge(name: &str, labels: &[(&str, &str)]) -> &'static Gauge {
    match resolve(name, labels, || {
        Handle::Gauge(Box::leak(Box::new(Gauge::default())))
    }) {
        Handle::Gauge(g) => g,
        other => panic!("metric '{name}' already registered as a {}", other.kind()),
    }
}

/// Resolves (registering on first use) the histogram `name` with `labels`,
/// using [`DEFAULT_MS_BUCKETS`].
///
/// # Panics
///
/// Panics on a metric-kind conflict, as for [`counter`].
#[must_use]
pub fn histogram(name: &str, labels: &[(&str, &str)]) -> &'static Histogram {
    histogram_with_buckets(name, labels, &DEFAULT_MS_BUCKETS)
}

/// [`histogram`] with explicit bucket upper bounds (strictly ascending; an
/// implicit `+Inf` bucket is always appended).  The bounds of the *first*
/// registration win; later resolutions of the same series reuse them.
///
/// # Panics
///
/// Panics on a metric-kind conflict, as for [`counter`].
#[must_use]
pub fn histogram_with_buckets(
    name: &str,
    labels: &[(&str, &str)],
    bounds: &[f64],
) -> &'static Histogram {
    match resolve(name, labels, || {
        Handle::Histogram(Box::leak(Box::new(Histogram::new(bounds))))
    }) {
        Handle::Histogram(h) => h,
        other => panic!("metric '{name}' already registered as a {}", other.kind()),
    }
}

/// Escapes a label value for the Prometheus text format.
fn escape_label(v: &str) -> String {
    v.replace('\\', "\\\\")
        .replace('"', "\\\"")
        .replace('\n', "\\n")
}

fn render_labels(labels: &[(String, String)], extra: Option<(&str, &str)>) -> String {
    let mut parts: Vec<String> = labels
        .iter()
        .map(|(k, v)| format!("{k}=\"{}\"", escape_label(v)))
        .collect();
    if let Some((k, v)) = extra {
        parts.push(format!("{k}=\"{v}\""));
    }
    if parts.is_empty() {
        String::new()
    } else {
        format!("{{{}}}", parts.join(","))
    }
}

fn format_bound(b: f64) -> String {
    if b.is_infinite() {
        "+Inf".to_string()
    } else {
        format!("{b}")
    }
}

/// Renders every registered metric in the Prometheus text exposition
/// format, sorted by metric name (then label set) for stable output.
#[must_use]
pub fn render_prometheus() -> String {
    let registry = registry().lock().unwrap_or_else(|e| e.into_inner());
    let mut order: Vec<usize> = (0..registry.entries.len()).collect();
    order.sort_by(|&a, &b| {
        let ea = &registry.entries[a];
        let eb = &registry.entries[b];
        ea.name
            .cmp(&eb.name)
            .then_with(|| ea.labels.cmp(&eb.labels))
    });
    let mut out = String::new();
    let mut last_name: Option<&str> = None;
    for &i in &order {
        let entry = &registry.entries[i];
        if last_name != Some(entry.name.as_str()) {
            out.push_str(&format!("# TYPE {} {}\n", entry.name, entry.handle.kind()));
            last_name = Some(entry.name.as_str());
        }
        match entry.handle {
            Handle::Counter(c) => {
                out.push_str(&format!(
                    "{}{} {}\n",
                    entry.name,
                    render_labels(&entry.labels, None),
                    c.get()
                ));
            }
            Handle::Gauge(g) => {
                out.push_str(&format!(
                    "{}{} {}\n",
                    entry.name,
                    render_labels(&entry.labels, None),
                    g.get()
                ));
            }
            Handle::Histogram(h) => {
                for (bound, cumulative) in h.cumulative_buckets() {
                    out.push_str(&format!(
                        "{}_bucket{} {}\n",
                        entry.name,
                        render_labels(&entry.labels, Some(("le", &format_bound(bound)))),
                        cumulative
                    ));
                }
                let plain = render_labels(&entry.labels, None);
                out.push_str(&format!("{}_sum{} {}\n", entry.name, plain, h.sum()));
                out.push_str(&format!("{}_count{} {}\n", entry.name, plain, h.count()));
            }
        }
    }
    out
}

/// One timed stage of a request's execution.
#[derive(Debug, Clone, PartialEq)]
pub struct Span {
    /// Stage name (`admission_wait`, `dispatch`, `filter`, `verify`,
    /// `fsync`, …).
    pub stage: String,
    /// Stage duration, milliseconds.
    pub ms: f64,
}

/// A completed per-request trace: id, what ran, total latency and the
/// per-stage breakdown.  Rendered one-per-line by [`Trace::render_line`];
/// the line format is documented in `docs/observability.md`.
#[derive(Debug, Clone, PartialEq)]
pub struct Trace {
    /// Process-unique id minted at admission ([`next_trace_id`]).
    pub id: u64,
    /// Operation (`query`, `append`, …).
    pub op: String,
    /// Tenant the request addressed (empty when not tenant-scoped).
    pub tenant: String,
    /// End-to-end latency in milliseconds (admission to reply).
    pub total_ms: f64,
    /// Per-stage timings, in pipeline order.
    pub spans: Vec<Span>,
}

impl Trace {
    /// Renders the trace as one `key=value` line:
    /// `trace id=7 op=query tenant=acme total_ms=12.345 filter_ms=3.100 …`.
    #[must_use]
    pub fn render_line(&self) -> String {
        let mut line = format!(
            "trace id={} op={} tenant={} total_ms={:.3}",
            self.id, self.op, self.tenant, self.total_ms
        );
        for span in &self.spans {
            line.push_str(&format!(" {}_ms={:.3}", span.stage, span.ms));
        }
        line
    }
}

fn trace_ring() -> &'static Mutex<VecDeque<Trace>> {
    static RING: OnceLock<Mutex<VecDeque<Trace>>> = OnceLock::new();
    RING.get_or_init(|| Mutex::new(VecDeque::with_capacity(TRACE_RING_CAPACITY)))
}

/// Retains a completed trace in the bounded ring buffer (newest evicts
/// oldest past [`TRACE_RING_CAPACITY`] entries).  A no-op while recording
/// is disabled.
pub fn record_trace(trace: Trace) {
    if !enabled() {
        return;
    }
    let mut ring = trace_ring().lock().unwrap_or_else(|e| e.into_inner());
    if ring.len() >= TRACE_RING_CAPACITY {
        ring.pop_front();
    }
    ring.push_back(trace);
}

/// The most recent `limit` retained traces, newest first (`limit == 0`
/// returns everything retained).
#[must_use]
pub fn recent_traces(limit: usize) -> Vec<Trace> {
    let ring = trace_ring().lock().unwrap_or_else(|e| e.into_inner());
    let take = if limit == 0 {
        ring.len()
    } else {
        limit.min(ring.len())
    };
    ring.iter().rev().take(take).cloned().collect()
}

#[cfg(test)]
mod tests {
    use super::*;

    /// Serialises tests that record metrics: `set_enabled(false)` in one
    /// test must not swallow a sibling test's increments.
    fn test_lock() -> std::sync::MutexGuard<'static, ()> {
        static LOCK: Mutex<()> = Mutex::new(());
        LOCK.lock().unwrap_or_else(|e| e.into_inner())
    }

    #[test]
    fn counters_and_gauges_accumulate_through_interned_handles() {
        let _guard = test_lock();
        let a = counter("obs_test_counter_total", &[("site", "a")]);
        let b = counter("obs_test_counter_total", &[("site", "a")]);
        assert!(std::ptr::eq(a, b), "same name+labels must intern");
        let before = a.get();
        a.inc();
        b.add(2);
        assert_eq!(a.get(), before + 3);

        let other = counter("obs_test_counter_total", &[("site", "b")]);
        assert!(
            !std::ptr::eq(a, other),
            "distinct labels are distinct series"
        );

        let g = gauge("obs_test_gauge", &[]);
        g.set(5);
        g.add(-2);
        assert_eq!(g.get(), 3);
    }

    #[test]
    fn label_order_does_not_split_series() {
        let x = counter("obs_test_order_total", &[("a", "1"), ("b", "2")]);
        let y = counter("obs_test_order_total", &[("b", "2"), ("a", "1")]);
        assert!(std::ptr::eq(x, y));
    }

    #[test]
    fn histogram_buckets_place_and_cumulate() {
        let _guard = test_lock();
        let h = histogram_with_buckets("obs_test_hist_ms", &[], &[1.0, 10.0, 100.0]);
        for v in [0.5, 0.5, 5.0, 50.0, 5000.0] {
            h.observe(v);
        }
        assert_eq!(h.count(), 5);
        assert!((h.sum() - 5056.0).abs() < 1e-9);
        let buckets = h.cumulative_buckets();
        assert_eq!(buckets.len(), 4);
        assert_eq!(buckets[0], (1.0, 2)); // 0.5, 0.5
        assert_eq!(buckets[1], (10.0, 3)); // + 5.0
        assert_eq!(buckets[2], (100.0, 4)); // + 50.0
        assert_eq!(buckets[3].1, 5); // +Inf catches everything
        assert!(buckets[3].0.is_infinite());
        // An observation exactly on a bound lands in that bound's bucket.
        let edge = histogram_with_buckets("obs_test_hist_edge_ms", &[], &[1.0, 10.0]);
        edge.observe(1.0);
        assert_eq!(edge.cumulative_buckets()[0], (1.0, 1));
    }

    #[test]
    fn histogram_bulk_observe_matches_repeated_singles() {
        let _guard = test_lock();
        let h = histogram_with_buckets("obs_test_hist_bulk", &[], &[2.0, 8.0]);
        h.observe_n(4.0, 3);
        h.observe_n(1.0, 0); // n == 0 records nothing
        assert_eq!(h.count(), 3);
        assert!((h.sum() - 12.0).abs() < 1e-9);
        assert_eq!(h.cumulative_buckets()[1], (8.0, 3));
    }

    #[test]
    fn prometheus_rendering_covers_every_kind() {
        let _guard = test_lock();
        counter("obs_test_render_total", &[("kind", "x")]).add(7);
        gauge("obs_test_render_depth", &[]).set(-3);
        histogram_with_buckets("obs_test_render_ms", &[], &[1.0]).observe(0.5);
        let text = render_prometheus();
        assert!(text.contains("# TYPE obs_test_render_total counter"));
        assert!(text.contains("obs_test_render_total{kind=\"x\"} 7"));
        assert!(text.contains("# TYPE obs_test_render_depth gauge"));
        assert!(text.contains("obs_test_render_depth -3"));
        assert!(text.contains("# TYPE obs_test_render_ms histogram"));
        assert!(text.contains("obs_test_render_ms_bucket{le=\"1\"} 1"));
        assert!(text.contains("obs_test_render_ms_bucket{le=\"+Inf\"} 1"));
        assert!(text.contains("obs_test_render_ms_sum 0.5"));
        assert!(text.contains("obs_test_render_ms_count 1"));
    }

    #[test]
    fn disabling_recording_freezes_values() {
        let _guard = test_lock();
        let c = counter("obs_test_toggle_total", &[]);
        let h = histogram("obs_test_toggle_ms", &[]);
        c.inc();
        h.observe(1.0);
        let (cv, hv) = (c.get(), h.count());
        set_enabled(false);
        c.inc();
        h.observe(1.0);
        record_trace(Trace {
            id: next_trace_id(),
            op: "query".into(),
            tenant: "t".into(),
            total_ms: 1.0,
            spans: vec![],
        });
        assert_eq!(c.get(), cv);
        assert_eq!(h.count(), hv);
        set_enabled(true);
        c.inc();
        assert_eq!(c.get(), cv + 1);
    }

    #[test]
    fn trace_ring_retains_newest_first_and_renders_lines() {
        let _guard = test_lock();
        let base = next_trace_id();
        for i in 0..(TRACE_RING_CAPACITY + 10) as u64 {
            record_trace(Trace {
                id: base + i,
                op: "query".into(),
                tenant: "ring".into(),
                total_ms: i as f64,
                spans: vec![Span {
                    stage: "verify".into(),
                    ms: i as f64 / 2.0,
                }],
            });
        }
        let recent = recent_traces(3);
        assert_eq!(recent.len(), 3);
        assert!(recent[0].id > recent[1].id && recent[1].id > recent[2].id);
        let line = recent[0].render_line();
        assert!(line.starts_with(&format!("trace id={} op=query tenant=ring", recent[0].id)));
        assert!(line.contains("verify_ms="));
        // The ring is bounded.
        assert!(recent_traces(0).len() <= TRACE_RING_CAPACITY);
    }

    #[test]
    fn trace_ids_are_unique_and_nonzero() {
        let a = next_trace_id();
        let b = next_trace_id();
        assert!(a > 0 && b > a);
    }
}

//! # ts-sax
//!
//! The **iSAX index** baseline (§4.2), adapted to twin subsequence search.
//!
//! The index is a prefix tree over the SAX words of every `l`-length
//! subsequence of the input series.  Each node carries an iSAX word — one
//! symbol per PAA segment, each expressed at its own cardinality — and leaves
//! hold the starting positions (plus the full-resolution SAX word) of the
//! subsequences that fall under the node's word prefix.  When a leaf exceeds
//! the maximum capacity (paper default: 10 000) it is split by refining one
//! segment's symbol by one bit.
//!
//! **Twin-search pruning rule.**  If `S ~ε Q` then every pair of time-aligned
//! segments of `S` and `Q` are also twins, so their segment means differ by
//! at most `ε`.  A node whose symbol for segment `i` covers the mean range
//! `[lo_i, hi_i]` can therefore be pruned as soon as
//! `PAA(Q)_i + ε < lo_i` or `PAA(Q)_i − ε > hi_i` for any segment `i`.
//! Surviving leaves contribute their positions as candidates, which are
//! verified against the raw series with early abandoning.

#![forbid(unsafe_code)]
#![warn(missing_docs)]

mod config;
mod index;

pub use config::IsaxConfig;
pub use index::{IsaxIndex, IsaxIndexStats, IsaxQueryStats};

//! Incremental index maintenance under streaming appends.
//!
//! The paper evaluates all four methods over a static, bulk-loaded series,
//! but its target workloads (EEG, movement traces) are produced by live
//! streams.  Appending `k` points to a series of length `n` creates `k` new
//! sliding windows of length `l` (those starting in `(n − l, n − l + k]`);
//! every index can absorb exactly those windows instead of being rebuilt:
//! TS-Index by its top-down insertion (§5.2), iSAX by inserting the new SAX
//! words, KV-Index by extending its rolling-mean posting lists, and the
//! index-free Sweepline trivially (its scan always sees the whole store).
//!
//! [`MaintainableSearcher`] is that contract: after the backing store grew,
//! [`on_append`](MaintainableSearcher::on_append) brings the searcher's
//! structures up to date so the very next query sees the appended data.
//! [`IngestStats`] is the matching instrumentation record, mirroring
//! [`SearchStats`](crate::query::SearchStats) on the write path.

use std::time::Duration;

/// A searcher whose structures can be maintained incrementally while the
/// backing store grows.
///
/// The trait is generic over the store type `S` (every implementation in
/// this workspace bounds it by `ts_storage::SeriesStore`) and over the
/// implementation's error type, so it can live in `ts-core` below the
/// storage layer.
///
/// # Contract
///
/// * The caller appends values to the store first, then calls
///   [`on_append`](MaintainableSearcher::on_append).  The searcher indexes
///   every subsequence window that is complete in the store but not yet in
///   its own structures, resuming from its **own** indexed count — windows
///   are always inserted densely in position order, so that count *is* the
///   resume point.  This makes `on_append` idempotent (a repeat call with
///   nothing new indexes nothing) and safe to retry: if a call fails
///   partway (e.g. a transient storage read error), the next call picks up
///   exactly where it stopped, and no window is skipped or double-indexed.
/// * After `on_append` returns, query results must be identical to those of
///   a searcher freshly bulk-built over the grown store (the workspace
///   property tests assert exactly this equivalence for all four methods).
pub trait MaintainableSearcher<S> {
    /// The error type of maintenance operations.
    type Error;

    /// Indexes every subsequence window present in `store` but not yet
    /// indexed, returning the number of windows indexed (0 for index-free
    /// methods).
    ///
    /// # Errors
    ///
    /// Propagates storage read failures.  On error, the windows indexed so
    /// far stay indexed and a later call resumes after them.
    fn on_append(&mut self, store: &S) -> Result<usize, Self::Error>;
}

/// Cumulative ingestion statistics of a live, appendable engine: the write
/// path's counterpart of [`SearchStats`](crate::query::SearchStats).
///
/// Invariants (asserted by the workspace property tests):
/// `append_calls ≤ points_appended` whenever any points were appended, and
/// every duration only ever grows.
#[derive(Debug, Clone, Copy, Default, PartialEq, Eq)]
pub struct IngestStats {
    /// Total number of values appended to the store.
    pub points_appended: usize,
    /// Number of `append` calls (chunks) absorbed.
    pub append_calls: usize,
    /// Subsequence windows indexed by incremental maintenance (0 for the
    /// index-free sweepline).
    pub windows_indexed: usize,
    /// Wall-clock spent writing into the backing store (including fsync for
    /// crash-safe disk backends).
    pub store_time: Duration,
    /// Wall-clock spent bringing the index up to date after appends.
    pub maintain_time: Duration,
}

impl IngestStats {
    /// Merges the statistics of two ingestion phases (e.g. aggregation over
    /// several live engines).
    #[must_use]
    pub fn merged(self, other: Self) -> Self {
        Self {
            points_appended: self.points_appended + other.points_appended,
            append_calls: self.append_calls + other.append_calls,
            windows_indexed: self.windows_indexed + other.windows_indexed,
            store_time: self.store_time + other.store_time,
            maintain_time: self.maintain_time + other.maintain_time,
        }
    }

    /// Sustained append throughput in points per second (0 when nothing was
    /// appended or no time was recorded).
    #[must_use]
    pub fn append_points_per_sec(&self) -> f64 {
        let total = (self.store_time + self.maintain_time).as_secs_f64();
        if total > 0.0 {
            self.points_appended as f64 / total
        } else {
            0.0
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn stats_merge_adds_fields() {
        let a = IngestStats {
            points_appended: 100,
            append_calls: 2,
            windows_indexed: 90,
            store_time: Duration::from_millis(3),
            maintain_time: Duration::from_millis(7),
        };
        let b = IngestStats {
            points_appended: 50,
            append_calls: 1,
            windows_indexed: 50,
            store_time: Duration::from_millis(1),
            maintain_time: Duration::from_millis(2),
        };
        let m = a.merged(b);
        assert_eq!(m.points_appended, 150);
        assert_eq!(m.append_calls, 3);
        assert_eq!(m.windows_indexed, 140);
        assert_eq!(m.store_time, Duration::from_millis(4));
        assert_eq!(m.maintain_time, Duration::from_millis(9));
    }

    #[test]
    fn throughput_is_points_over_total_time() {
        let s = IngestStats {
            points_appended: 1_000,
            append_calls: 1,
            windows_indexed: 1_000,
            store_time: Duration::from_millis(250),
            maintain_time: Duration::from_millis(250),
        };
        assert!((s.append_points_per_sec() - 2_000.0).abs() < 1e-9);
        assert_eq!(IngestStats::default().append_points_per_sec(), 0.0);
    }

    #[test]
    fn trait_is_object_safe_enough_for_generic_use() {
        struct Nop;
        impl MaintainableSearcher<Vec<f64>> for Nop {
            type Error = std::convert::Infallible;
            fn on_append(&mut self, _store: &Vec<f64>) -> Result<usize, Self::Error> {
                Ok(0)
            }
        }
        let mut n = Nop;
        assert_eq!(n.on_append(&vec![1.0]).unwrap(), 0);
    }
}

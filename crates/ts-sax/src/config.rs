//! Construction parameters for the iSAX index.

use ts_core::sax::{Breakpoints, MAX_SYMBOL_BITS};
use ts_core::{Result, TsError};

/// Construction parameters for [`crate::IsaxIndex`].
#[derive(Debug, Clone)]
pub struct IsaxConfig {
    /// Subsequence length `l` the index is built for.
    pub subsequence_len: usize,
    /// Number of PAA segments `m` (the SAX word length; Table 2 default 10).
    pub segments: usize,
    /// Maximum number of entries a leaf may hold before it is split
    /// (§6.1 default: 10 000).
    pub leaf_capacity: usize,
    /// Full-resolution (256-symbol) breakpoints used to quantise segment
    /// means.  Gaussian breakpoints for z-normalised data, uniform breakpoints
    /// for raw values.
    pub breakpoints: Breakpoints,
}

impl IsaxConfig {
    /// Configuration for z-normalised data with the paper's defaults
    /// (`m = 10`, leaf capacity 10 000) and Gaussian breakpoints.
    ///
    /// # Errors
    ///
    /// Returns an error if `subsequence_len` is zero.
    pub fn for_normalized(subsequence_len: usize) -> Result<Self> {
        if subsequence_len == 0 {
            return Err(TsError::InvalidParameter(
                "subsequence length must be positive".into(),
            ));
        }
        Ok(Self {
            subsequence_len,
            segments: 10.min(subsequence_len),
            leaf_capacity: 10_000,
            breakpoints: Breakpoints::gaussian(1usize << MAX_SYMBOL_BITS)
                .expect("256-symbol Gaussian breakpoints are always valid"),
        })
    }

    /// Configuration for raw (non-normalised) data: uniform breakpoints over
    /// the expected value range `[lo, hi]`.
    ///
    /// # Errors
    ///
    /// Returns an error if `subsequence_len` is zero or `lo >= hi`.
    pub fn for_raw(subsequence_len: usize, lo: f64, hi: f64) -> Result<Self> {
        if subsequence_len == 0 {
            return Err(TsError::InvalidParameter(
                "subsequence length must be positive".into(),
            ));
        }
        Ok(Self {
            subsequence_len,
            segments: 10.min(subsequence_len),
            leaf_capacity: 10_000,
            breakpoints: Breakpoints::uniform(1usize << MAX_SYMBOL_BITS, lo, hi)?,
        })
    }

    /// Overrides the number of PAA segments (clamped to the subsequence
    /// length and to at least 1).
    #[must_use]
    pub fn with_segments(mut self, segments: usize) -> Self {
        self.segments = segments.clamp(1, self.subsequence_len);
        self
    }

    /// Overrides the leaf capacity (at least 2).
    #[must_use]
    pub fn with_leaf_capacity(mut self, capacity: usize) -> Self {
        self.leaf_capacity = capacity.max(2);
        self
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn normalized_defaults_match_paper() {
        let c = IsaxConfig::for_normalized(100).unwrap();
        assert_eq!(c.segments, 10);
        assert_eq!(c.leaf_capacity, 10_000);
        assert_eq!(c.subsequence_len, 100);
        assert_eq!(c.breakpoints.alphabet_size(), 256);
    }

    #[test]
    fn segments_clamped_to_length() {
        let c = IsaxConfig::for_normalized(4).unwrap();
        assert_eq!(c.segments, 4);
        let c = IsaxConfig::for_normalized(100).unwrap().with_segments(500);
        assert_eq!(c.segments, 100);
        let c = IsaxConfig::for_normalized(100).unwrap().with_segments(0);
        assert_eq!(c.segments, 1);
    }

    #[test]
    fn raw_configuration_uses_uniform_breakpoints() {
        let c = IsaxConfig::for_raw(50, -10.0, 10.0).unwrap();
        assert_eq!(c.breakpoints.alphabet_size(), 256);
        assert!(IsaxConfig::for_raw(50, 5.0, 5.0).is_err());
        assert!(IsaxConfig::for_raw(0, -1.0, 1.0).is_err());
    }

    #[test]
    fn builders_enforce_minimums() {
        let c = IsaxConfig::for_normalized(100)
            .unwrap()
            .with_leaf_capacity(1);
        assert_eq!(c.leaf_capacity, 2);
        assert!(IsaxConfig::for_normalized(0).is_err());
    }
}

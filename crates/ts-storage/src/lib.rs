//! # ts-storage
//!
//! Storage substrate for the twin subsequence search workspace.
//!
//! The paper's experimental setup (§6.1) keeps every index structure in main
//! memory while the raw input time series resides **on disk**; leaf nodes
//! store only the starting positions of their subsequences, and candidate
//! subsequences are fetched from the data file with random access during
//! verification.  This crate provides that substrate:
//!
//! * [`SeriesStore`] — the access trait every index crate builds against.
//! * [`AppendableStore`] — the streaming extension: stores whose series can
//!   grow monotonically at the end (positions never shift), the storage half
//!   of the `ts-ingest` ingestion contract.
//! * [`StoreKind`] — the backend selector callers thread through engine
//!   builders and the CLI.
//! * [`PerSubsequenceNormalized`] — a wrapper that z-normalises every
//!   extracted subsequence on the fly (the Fig. 6 regime).
//! * [`text`] — plain-text loaders/writers for interoperability with the
//!   original datasets' distribution format (one value per line).
//!
//! ## Store backend matrix
//!
//! All file-backed stores share one binary format ([`write_series`]: magic +
//! length header, little-endian `f64` payload, written atomically via a
//! temp-file rename) and are interchangeable behind [`SeriesStore`]; they
//! differ in how reads are served and which access pattern they are built
//! for:
//!
//! | Backend | Type | Serves reads from | Appendable | Built for | Run reads ([`SeriesStore::read_range_into`]) |
//! |---|---|---|---|---|---|
//! | `memory` | [`InMemorySeries`] | a `Vec<f64>` | yes | everything RAM-sized; the baseline the others are verified against | one `copy_from_slice` |
//! | `disk` | [`DiskSeries`] | one file handle + a readahead window behind one mutex | no | **sequential** scans: index construction, ingestion catch-up verification | readahead window engages on run-sequential access |
//! | `disk-cached` | [`BlockCachedSeries`] | a sharded, lock-striped LRU of power-of-two blocks, one file handle per shard | no | **random**, multi-threaded verification reads (tree-ordered candidates) | fetches exactly the minimal block set covering the run; one physical read per uncached block |
//! | `mmap` | [`MmapSeries`] | a read-only file mapping (the OS page cache) | no | random reads on files that fit the page cache; zero syscalls and zero locks after open | one `copy_from_slice` out of the mapping |
//! | append-log | `ts-ingest`'s `AppendLogSeries` | an in-memory mirror of a crash-safe commit log | yes | streaming ingestion with recovery | one `copy_from_slice` out of the mirror |
//!
//! Contracts: every backend returns bit-identical values for the same file
//! (enforced by cross-backend property tests); `disk`/`disk-cached`/`mmap`
//! are read-only over immutable files (atomic replacement keeps open stores
//! valid); only `memory` and the append-log accept appends.  All backends
//! are safe to share behind `&self` across query threads; `disk` serialises
//! readers behind its mutex, `disk-cached` only per shard, `mmap` and
//! `memory` not at all.  Since the unified verification pipeline
//! (`ts_core::pipeline`) coalesces candidates into contiguous runs and
//! issues one [`SeriesStore::read_range_into`] per run, the dominant read
//! pattern at query time is short sequential bursts rather than one
//! window-sized random read per candidate.

#![forbid(unsafe_code)]
#![warn(missing_docs)]

mod appendable;
mod block_cache;
mod disk;
mod error;
mod memory;
mod mmap;
mod normalized;
mod store;
pub mod text;

pub use appendable::{validate_finite, AppendableStore};
pub use block_cache::{BlockCacheConfig, BlockCachedSeries};
pub use disk::{write_series, DiskSeries, FORMAT_MAGIC, HEADER_BYTES};
pub use error::{Result, StorageError};
pub use memory::InMemorySeries;
pub use mmap::MmapSeries;
pub use normalized::PerSubsequenceNormalized;
pub use store::{plan_verify_options, SeriesStore, StoreKind};

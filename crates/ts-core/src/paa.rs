//! Piecewise Aggregate Approximation (PAA).
//!
//! PAA (Keogh et al., 2001) splits a sequence into `m` segments along the time
//! axis and represents each segment by its mean value.  It is the first step
//! of the SAX representation (§4.2) and the basis of the segment-wise pruning
//! rule used when adapting iSAX to twin subsequence search: if two sequences
//! are twins w.r.t. `ε`, the means of every pair of time-aligned segments
//! differ by at most `ε`.

use crate::error::{Result, TsError};

/// Computes the PAA representation of `values` with `segments` segments.
///
/// When the length is not divisible by the number of segments, the standard
/// fractional-weight scheme is used: a value that straddles a segment boundary
/// contributes proportionally to both segments, so the result is exact for any
/// `(length, segments)` combination.
///
/// # Errors
///
/// Returns [`TsError::InvalidParameter`] if `segments == 0` or
/// `segments > values.len()`, and [`TsError::EmptySequence`] for empty input.
pub fn paa(values: &[f64], segments: usize) -> Result<Vec<f64>> {
    if values.is_empty() {
        return Err(TsError::EmptySequence);
    }
    if segments == 0 {
        return Err(TsError::InvalidParameter(
            "PAA requires at least one segment".into(),
        ));
    }
    if segments > values.len() {
        return Err(TsError::InvalidParameter(format!(
            "PAA segment count {} exceeds sequence length {}",
            segments,
            values.len()
        )));
    }
    let n = values.len();
    if segments == n {
        return Ok(values.to_vec());
    }
    // Exact divisibility: plain segment means.
    if n.is_multiple_of(segments) {
        let w = n / segments;
        return Ok((0..segments)
            .map(|s| values[s * w..(s + 1) * w].iter().sum::<f64>() / w as f64)
            .collect());
    }
    // General case: distribute each value's weight across the segments it
    // overlaps when the series is stretched to `lcm(n, segments)` length.
    let mut out = vec![0.0_f64; segments];
    let seg_width = n as f64 / segments as f64;
    for (i, &v) in values.iter().enumerate() {
        let lo = i as f64;
        let hi = (i + 1) as f64;
        let first = (lo / seg_width).floor() as usize;
        let last = (((hi / seg_width).ceil() as usize).max(1) - 1).min(segments - 1);
        for (s, slot) in out.iter_mut().enumerate().take(last + 1).skip(first) {
            let seg_lo = s as f64 * seg_width;
            let seg_hi = seg_lo + seg_width;
            let overlap = (hi.min(seg_hi) - lo.max(seg_lo)).max(0.0);
            *slot += v * overlap;
        }
    }
    for slot in &mut out {
        *slot /= seg_width;
    }
    Ok(out)
}

/// Returns the `(start, end)` half-open index range of segment `segment` when a
/// sequence of length `len` is divided into `segments` equal *integral* parts
/// (remainder spread over the first segments).  Used by index structures that
/// need to know which raw positions a PAA value summarises.
#[must_use]
pub fn segment_bounds(len: usize, segments: usize, segment: usize) -> (usize, usize) {
    debug_assert!(segment < segments);
    let base = len / segments;
    let extra = len % segments;
    let start = segment * base + segment.min(extra);
    let width = base + usize::from(segment < extra);
    (start, start + width)
}

#[cfg(test)]
mod tests {
    use super::*;

    fn assert_close(a: f64, b: f64) {
        assert!((a - b).abs() < 1e-9, "{a} vs {b}");
    }

    #[test]
    fn divisible_case() {
        let v = [1.0, 3.0, 5.0, 7.0, 2.0, 4.0];
        let p = paa(&v, 3).unwrap();
        assert_eq!(p.len(), 3);
        assert_close(p[0], 2.0);
        assert_close(p[1], 6.0);
        assert_close(p[2], 3.0);
    }

    #[test]
    fn segments_equal_length_is_identity() {
        let v = [1.5, -2.0, 3.25];
        assert_eq!(paa(&v, 3).unwrap(), v.to_vec());
    }

    #[test]
    fn single_segment_is_mean() {
        let v = [2.0, 4.0, 9.0];
        let p = paa(&v, 1).unwrap();
        assert_close(p[0], 5.0);
    }

    #[test]
    fn fractional_case_preserves_total_mass() {
        // Sum of PAA values * segment width must equal sum of original values.
        let v: Vec<f64> = (0..10).map(|i| i as f64).collect();
        let segments = 3;
        let p = paa(&v, segments).unwrap();
        let seg_width = v.len() as f64 / segments as f64;
        let mass: f64 = p.iter().map(|x| x * seg_width).sum();
        assert_close(mass, v.iter().sum());
    }

    #[test]
    fn fractional_case_known_values() {
        // length 5, 2 segments, width 2.5:
        // segment 0 = (1 + 2 + 0.5*3) / 2.5, segment 1 = (0.5*3 + 4 + 5) / 2.5
        let v = [1.0, 2.0, 3.0, 4.0, 5.0];
        let p = paa(&v, 2).unwrap();
        assert_close(p[0], 4.5 / 2.5);
        assert_close(p[1], 10.5 / 2.5);
    }

    #[test]
    fn invalid_parameters() {
        assert!(paa(&[], 2).is_err());
        assert!(paa(&[1.0, 2.0], 0).is_err());
        assert!(paa(&[1.0, 2.0], 3).is_err());
    }

    #[test]
    fn paa_of_constant_is_constant() {
        let v = vec![7.5; 23];
        for m in [1, 2, 5, 23] {
            for x in paa(&v, m).unwrap() {
                assert_close(x, 7.5);
            }
        }
    }

    #[test]
    fn segment_bounds_cover_whole_range() {
        for (len, segments) in [(10, 3), (100, 7), (5, 5), (17, 4)] {
            let mut covered = 0;
            for s in 0..segments {
                let (a, b) = segment_bounds(len, segments, s);
                assert_eq!(a, covered, "segments must be contiguous");
                assert!(b > a);
                covered = b;
            }
            assert_eq!(covered, len);
        }
    }
}

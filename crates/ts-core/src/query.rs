//! The query/outcome vocabulary of the public search API.
//!
//! Every search method answers a [`TwinQuery`] with a [`SearchOutcome`]:
//! the matching positions plus, on request, a [`SearchStats`] record of how
//! the answer was reached (candidates generated and verified, index nodes
//! visited and pruned, and the filter-vs-verify wall-clock split).  The
//! paper's whole evaluation (§6, Figures 4–8) is about exactly these
//! quantities, so they are first-class here rather than a side channel.

use std::time::Duration;

/// A twin subsequence query: the query values, the Chebyshev threshold ε,
/// and execution options.
///
/// Built with [`TwinQuery::new`] and refined with the chainable options:
///
/// ```
/// use ts_core::query::TwinQuery;
///
/// let q = TwinQuery::new(vec![0.0, 0.5, 1.0], 0.25)
///     .parallel(4)
///     .limit(10)
///     .collect_stats();
/// // The thread request is clamped to what the machine can actually run.
/// assert_eq!(q.threads(), 4.min(ts_core::exec::available_parallelism()));
/// assert_eq!(q.result_limit(), Some(10));
/// assert!(q.wants_stats());
/// assert!(!q.is_count_only());
/// ```
#[derive(Debug, Clone, PartialEq)]
pub struct TwinQuery {
    values: Vec<f64>,
    epsilon: f64,
    threads: usize,
    limit: Option<usize>,
    count_only: bool,
    collect_stats: bool,
}

impl TwinQuery {
    /// Creates a query with the default options: sequential execution, no
    /// result limit, full result materialisation, no statistics.
    #[must_use]
    pub fn new(values: Vec<f64>, epsilon: f64) -> Self {
        Self {
            values,
            epsilon,
            threads: 1,
            limit: None,
            count_only: false,
            collect_stats: false,
        }
    }

    /// Requests a multi-threaded traversal with (up to) `threads` workers.
    ///
    /// The requested count is clamped to the machine's
    /// [`crate::exec::available_parallelism`] (never below 1), so a query
    /// built on a 4-core box never asks an executor for 64 workers;
    /// [`TwinQuery::threads`] returns the clamped value.  Methods without a
    /// parallel path answer sequentially either way; the outcome's
    /// [`SearchOutcome::threads_used`] reports what actually happened.
    #[must_use]
    pub fn parallel(mut self, threads: usize) -> Self {
        self.threads = crate::exec::clamp_threads(threads);
        self
    }

    /// Caps the result at the `n` matches with the smallest positions.
    ///
    /// Scan-ordered methods (Sweepline, KV-Index) stop early once the cap is
    /// reached; tree methods cap after the traversal.
    #[must_use]
    pub fn limit(mut self, n: usize) -> Self {
        self.limit = Some(n);
        self
    }

    /// Requests the match count only: the outcome's position list stays
    /// empty, [`SearchOutcome::match_count`] carries the answer.
    #[must_use]
    pub fn count_only(mut self) -> Self {
        self.count_only = true;
        self
    }

    /// Requests execution statistics in the outcome.
    #[must_use]
    pub fn collect_stats(mut self) -> Self {
        self.collect_stats = true;
        self
    }

    /// The query values.
    #[must_use]
    pub fn values(&self) -> &[f64] {
        &self.values
    }

    /// The Chebyshev threshold ε.
    #[must_use]
    pub fn epsilon(&self) -> f64 {
        self.epsilon
    }

    /// Number of traversal threads the query will be answered with (1 =
    /// sequential; already clamped to the available parallelism by
    /// [`TwinQuery::parallel`]).
    #[must_use]
    pub fn threads(&self) -> usize {
        self.threads
    }

    /// The result cap, if any.
    #[must_use]
    pub fn result_limit(&self) -> Option<usize> {
        self.limit
    }

    /// `true` when only the match count is wanted.
    #[must_use]
    pub fn is_count_only(&self) -> bool {
        self.count_only
    }

    /// `true` when execution statistics are wanted.
    #[must_use]
    pub fn wants_stats(&self) -> bool {
        self.collect_stats
    }
}

/// Execution statistics of one answered [`TwinQuery`].
///
/// Invariants (asserted by the workspace property tests):
/// `matches ≤ candidates_verified ≤ candidates_generated`, and
/// `nodes_pruned ≤ nodes_visited`.
#[derive(Debug, Clone, Copy, Default, PartialEq, Eq)]
pub struct SearchStats {
    /// Candidate positions produced by the filter step (for the index-free
    /// sweepline: every subsequence position).
    pub candidates_generated: usize,
    /// Candidates actually run through exact verification (smaller than
    /// `candidates_generated` when a result limit stops the scan early).
    pub candidates_verified: usize,
    /// Index nodes whose summary was compared against the query (mean-value
    /// buckets for KV-Index, tree nodes for iSAX and TS-Index; 0 for the
    /// sweepline).
    pub nodes_visited: usize,
    /// Index nodes pruned without descending / expanding.
    pub nodes_pruned: usize,
    /// Wall-clock spent in the filter side: index traversal and candidate
    /// generation.  Summed across workers on a parallel traversal.
    pub filter_time: Duration,
    /// Wall-clock spent verifying candidates against the store.  Summed
    /// across workers on a parallel traversal.
    pub verify_time: Duration,
}

impl SearchStats {
    /// Merges the statistics of another partial execution into `self`.
    ///
    /// This is the single merge point for every multi-part execution in the
    /// workspace: per-worker statistics of the parallel TS-Index traversal,
    /// per-shard statistics of a sharded search, and workload aggregation in
    /// the bench harness all fold through here, so the counter invariants
    /// (`matches ≤ candidates_verified ≤ candidates_generated`,
    /// `nodes_pruned ≤ nodes_visited`) are preserved by construction.
    pub fn merge(&mut self, other: Self) {
        self.candidates_generated += other.candidates_generated;
        self.candidates_verified += other.candidates_verified;
        self.nodes_visited += other.nodes_visited;
        self.nodes_pruned += other.nodes_pruned;
        self.filter_time += other.filter_time;
        self.verify_time += other.verify_time;
    }

    /// By-value form of [`SearchStats::merge`], convenient in folds.
    #[must_use]
    pub fn merged(mut self, other: Self) -> Self {
        self.merge(other);
        self
    }
}

/// The answer to a [`TwinQuery`].
#[derive(Debug, Clone, PartialEq)]
pub struct SearchOutcome {
    /// Human-readable name of the method that answered (matches the paper's
    /// figure legends).
    pub method: &'static str,
    /// Matching starting positions in increasing order; empty when the query
    /// asked for [`TwinQuery::count_only`].
    pub positions: Vec<usize>,
    /// Number of matches found (equals `positions.len()` unless the query
    /// was count-only).
    pub match_count: usize,
    /// Number of worker threads the traversal actually used.
    pub threads_used: usize,
    /// Total wall-clock time answering the query (always recorded).
    pub query_time: Duration,
    /// Execution statistics, present when the query asked for them via
    /// [`TwinQuery::collect_stats`].
    pub stats: Option<SearchStats>,
}

impl SearchOutcome {
    /// Consumes the outcome and returns the matching positions.
    #[must_use]
    pub fn into_positions(self) -> Vec<usize> {
        self.positions
    }

    /// `true` when the recorded statistics satisfy the documented invariants
    /// (vacuously true when no statistics were collected).
    #[must_use]
    pub fn stats_consistent(&self) -> bool {
        self.stats.is_none_or(|s| {
            self.match_count <= s.candidates_verified
                && s.candidates_verified <= s.candidates_generated
                && s.nodes_pruned <= s.nodes_visited
        })
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn builder_defaults_and_options() {
        let q = TwinQuery::new(vec![1.0, 2.0], 0.5);
        assert_eq!(q.values(), &[1.0, 2.0]);
        assert_eq!(q.epsilon(), 0.5);
        assert_eq!(q.threads(), 1);
        assert_eq!(q.result_limit(), None);
        assert!(!q.is_count_only());
        assert!(!q.wants_stats());

        let q = q.parallel(0).limit(3).count_only().collect_stats();
        assert_eq!(q.threads(), 1, "thread counts are clamped to >= 1");
        assert_eq!(q.result_limit(), Some(3));
        assert!(q.is_count_only());
        assert!(q.wants_stats());

        // Oversized requests are clamped to the available parallelism.
        let q = TwinQuery::new(vec![1.0], 0.1).parallel(usize::MAX);
        assert_eq!(q.threads(), crate::exec::available_parallelism());
    }

    #[test]
    fn stats_merge_adds_fields() {
        let a = SearchStats {
            candidates_generated: 10,
            candidates_verified: 8,
            nodes_visited: 5,
            nodes_pruned: 2,
            filter_time: Duration::from_millis(1),
            verify_time: Duration::from_millis(2),
        };
        let b = SearchStats {
            candidates_generated: 1,
            candidates_verified: 1,
            nodes_visited: 1,
            nodes_pruned: 1,
            filter_time: Duration::from_millis(10),
            verify_time: Duration::from_millis(20),
        };
        let m = a.merged(b);
        assert_eq!(m.candidates_generated, 11);
        assert_eq!(m.candidates_verified, 9);
        assert_eq!(m.nodes_visited, 6);
        assert_eq!(m.nodes_pruned, 3);
        assert_eq!(m.filter_time, Duration::from_millis(11));
        assert_eq!(m.verify_time, Duration::from_millis(22));
    }

    #[test]
    fn outcome_consistency_check() {
        let mut outcome = SearchOutcome {
            method: "test",
            positions: vec![1, 2],
            match_count: 2,
            threads_used: 1,
            query_time: Duration::ZERO,
            stats: None,
        };
        assert!(
            outcome.stats_consistent(),
            "no stats is vacuously consistent"
        );
        outcome.stats = Some(SearchStats {
            candidates_generated: 5,
            candidates_verified: 3,
            nodes_visited: 4,
            nodes_pruned: 1,
            ..SearchStats::default()
        });
        assert!(outcome.stats_consistent());
        outcome.stats = Some(SearchStats {
            candidates_generated: 2,
            candidates_verified: 3,
            ..SearchStats::default()
        });
        assert!(!outcome.stats_consistent(), "verified > generated");
        assert_eq!(outcome.clone().into_positions(), vec![1, 2]);
    }
}

//! # ts-core
//!
//! Core time-series primitives shared by every crate in the *twin subsequence
//! search* workspace.  This crate reproduces the building blocks used by the
//! EDBT 2021 paper "Twin Subsequence Search in Time Series":
//!
//! * [`TimeSeries`] — an owned, length-checked sequence of `f64` values with
//!   cheap subsequence views ([`series::Subsequence`]).
//! * [`distance`] — Chebyshev (L∞), Euclidean (L2) and generic Lp distances,
//!   including early-abandoning variants used during verification.
//! * [`normalize`] — z-normalisation of whole series and of individual
//!   subsequences (the three normalisation regimes discussed in §3.1 of the
//!   paper).
//! * [`paa`] / [`sax`] — Piecewise Aggregate Approximation and the Symbolic
//!   Aggregate approXimation alphabet used by the iSAX baseline (§4.2).
//! * [`mbts`] — the *Minimum Bounding Time Series* envelope and the two
//!   distance functions of Equations (2) and (3) that drive the TS-Index (§5).
//! * [`verify`] — filter-verification helpers with *reordering early
//!   abandoning* (§3.2).
//! * [`twin`] — the twin-sequence predicate itself (Definition 1) and the
//!   Chebyshev→Euclidean threshold relation `ε' = ε·√l` (§3.1).
//!
//! All positions are **0-based** (the paper uses 1-based timestamps); a
//! subsequence `T_{p,l}` of the paper corresponds to `&series.values()[p..p+l]`
//! here.

#![forbid(unsafe_code)]
#![warn(missing_docs)]

pub mod distance;
pub mod error;
pub mod mbts;
pub mod normalize;
pub mod paa;
pub mod sax;
pub mod series;
pub mod stats;
pub mod twin;
pub mod verify;

pub use error::{Result, TsError};
pub use mbts::Mbts;
pub use series::{Subsequence, TimeSeries};
pub use twin::{are_twins, euclidean_threshold_for};

//! Query execution: Algorithm 1 (threshold search), a top-k extension, and a
//! work-stealing multi-threaded traversal.
//!
//! The parallel traversal runs on the shared [`ts_core::exec::Executor`]:
//! tree nodes become tasks, and internal nodes near the top of the tree (or
//! whenever the pool is close to starving) are split into one task per child
//! instead of being traversed inline — see [`SplitPolicy::DepthAdaptive`].
//! This keeps every worker busy on *skewed* trees, where the one-level
//! root-children split (retained as [`SplitPolicy::RootChildren`], the
//! baseline measured by the scaling ablation) leaves all but one worker idle
//! as soon as a single subtree dominates.

use std::time::Instant;

use ts_storage::{Result, SeriesStore, StorageError};

use crate::index::TsIndex;
use crate::node::{NodeId, NodeKind};
use crate::stats::TsQueryStats;
use ts_core::exec::{Executor, TaskContext};
use ts_core::pipeline::{
    finish_outcome, split_filter_time, CandidateSet, Pipeline, Scratch, VerifyOptions,
};
use ts_core::query::{SearchOutcome, SearchStats, TwinQuery};
use ts_core::verify::Verifier;

/// How the multi-threaded traversal turns subtrees into executor tasks.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub enum SplitPolicy {
    /// Split only the root's children into tasks (the pre-work-stealing
    /// behaviour).  On a skewed tree one subtree dominates and all but one
    /// worker go idle; kept as the measured baseline of the
    /// `ablation_shard_scaling` bench.
    RootChildren,
    /// Split internal nodes into per-child tasks while the node is shallow
    /// (`depth < 2`) **or** the pool is close to starving (fewer pending
    /// tasks than twice the worker count), up to a maximum split depth of
    /// 16.  Deeper or well-fed subtrees are traversed inline, so task
    /// bookkeeping stays amortised while skewed trees keep splitting until
    /// every worker has work to steal.
    DepthAdaptive,
}

/// Nodes shallower than this always split (one task per child).
const SPLIT_MIN_DEPTH: u32 = 2;
/// Nodes at or below this depth never split, whatever the queue pressure.
const SPLIT_MAX_DEPTH: u32 = 16;

/// The outcome of one multi-threaded traversal: unsorted matches, exactly
/// merged per-worker statistics, and scheduling telemetry.
#[derive(Debug, Clone)]
pub struct ParallelTraversal {
    /// Matching positions, **unsorted** (workers finish in scheduling
    /// order; callers sort once at the end).
    pub positions: Vec<usize>,
    /// Per-worker statistics merged through [`SearchStats::merge`]: every
    /// node is processed by exactly one task, so `nodes_visited` /
    /// `nodes_pruned` / candidate counters equal the sequential traversal's
    /// exactly.  The filter/verify times are summed across workers
    /// (aggregate CPU time, not wall-clock).
    pub stats: SearchStats,
    /// Worker count of the pool that ran the traversal (1 when the tree was
    /// too small to split or a single worker was requested).
    pub threads_used: usize,
    /// Number of executor tasks the traversal was split into (1 on the
    /// sequential path).  On a skewed tree this is the direct measure of
    /// how much deeper than the root the split reached.
    pub tasks_executed: usize,
}

/// Per-worker state of the parallel traversal: result/statistics
/// accumulators plus the pending candidate set and verification pipeline.
struct TraverseAcc<'q> {
    results: Vec<usize>,
    stats: SearchStats,
    /// Leaf positions collected since the last flush; drained (capacity
    /// kept) by [`TraverseAcc::flush`], so one worker reuses the same
    /// allocation across all its tasks.
    pending: CandidateSet,
    pipeline: Pipeline<'q>,
    /// Scratch stack for inline subtree traversal.
    stack: Vec<NodeId>,
}

impl<'q> TraverseAcc<'q> {
    fn new(query: &'q [f64], epsilon: f64, stack: Vec<NodeId>) -> Self {
        Self {
            results: Vec::new(),
            stats: SearchStats::default(),
            pending: CandidateSet::new(),
            pipeline: Pipeline::new(query, epsilon),
            stack,
        }
    }

    /// Verifies every pending candidate through the pipeline, appending
    /// matches to `results` and folding the verification counters/timing
    /// into `stats`.
    ///
    /// Always exhaustive (no limit-driven early stop): the parallel
    /// traversal's counters must merge to exactly the sequential totals,
    /// so limits are applied by the caller after the sorted merge.
    fn flush<S: SeriesStore>(&mut self, store: &S, collect: bool) -> Result<()> {
        if self.pending.is_empty() {
            return Ok(());
        }
        let report = self.pipeline.verify_into(
            &mut self.pending,
            |start, buf| store.read_raw_range_into(start, buf),
            ts_storage::plan_verify_options(store, VerifyOptions::exhaustive(collect)),
            &mut self.results,
        )?;
        self.stats.candidates_verified += report.verified;
        self.stats.verify_time += report.verify_time;
        Ok(())
    }
}

/// One result of a top-k twin query: the subsequence position and its exact
/// Chebyshev distance to the query.
#[derive(Debug, Clone, Copy, PartialEq)]
pub struct TopKMatch {
    /// Starting position of the subsequence.
    pub position: usize,
    /// Chebyshev distance to the query.
    pub distance: f64,
}

impl TsIndex {
    /// Twin subsequence search (Algorithm 1): returns the starting positions
    /// of every subsequence whose Chebyshev distance to `query` is at most
    /// `epsilon`, in increasing order.
    ///
    /// # Errors
    ///
    /// Returns a length-mismatch error if `query.len()` differs from the
    /// indexed subsequence length, and propagates storage failures.
    pub fn search<S: SeriesStore>(
        &self,
        store: &S,
        query: &[f64],
        epsilon: f64,
    ) -> Result<Vec<usize>> {
        Ok(self.search_with_stats(store, query, epsilon)?.0)
    }

    /// Like [`TsIndex::search`] but also returns traversal statistics.
    ///
    /// # Errors
    ///
    /// Same as [`TsIndex::search`].
    pub fn search_with_stats<S: SeriesStore>(
        &self,
        store: &S,
        query: &[f64],
        epsilon: f64,
    ) -> Result<(Vec<usize>, TsQueryStats)> {
        self.validate_query(query)?;
        let Some(root) = self.root else {
            return Ok((Vec::new(), TsQueryStats::default()));
        };
        // Algorithm 1 initialises the candidate list with the root's
        // children; starting from the root itself is equivalent (its check
        // can never prune anything its children would not).  The counters
        // are collected unconditionally; only the timing split (which
        // TsQueryStats does not carry) needs `collect`, so this path stays
        // free of clock reads.
        let (mut results, stats) = self.traverse(store, query, epsilon, &[root], false)?;
        results.sort_unstable();
        let stats = TsQueryStats {
            nodes_visited: stats.nodes_visited,
            nodes_pruned: stats.nodes_pruned,
            candidates: stats.candidates_generated,
            matches: results.len(),
        };
        Ok((results, stats))
    }

    /// Counts the twins of `query` without materialising the result list.
    ///
    /// # Errors
    ///
    /// Same as [`TsIndex::search`].
    pub fn count<S: SeriesStore + Sync>(
        &self,
        store: &S,
        query: &[f64],
        epsilon: f64,
    ) -> Result<usize> {
        Ok(self
            .execute(store, &TwinQuery::new(query.to_vec(), epsilon).count_only())?
            .match_count)
    }

    /// Depth-first Algorithm 1 traversal of the subtrees rooted at `roots`:
    /// prune with the MBTS lower bound (Lemma 1, early abandoning), verify
    /// surviving leaf positions.  Returns unsorted matches plus statistics
    /// (timing recorded only when `collect` is set, so the cheap path stays
    /// free of clock reads).
    fn traverse<S: SeriesStore>(
        &self,
        store: &S,
        query: &[f64],
        epsilon: f64,
        roots: &[NodeId],
        collect: bool,
    ) -> Result<(Vec<usize>, SearchStats)> {
        let started = collect.then(Instant::now);
        let mut acc = TraverseAcc::new(query, epsilon, roots.to_vec());
        self.traverse_into(query, epsilon, &mut acc);
        acc.flush(store, collect)?;
        let TraverseAcc {
            results, mut stats, ..
        } = acc;
        if let Some(t) = started {
            stats.filter_time = split_filter_time(t.elapsed(), stats.verify_time);
        }
        Ok((results, stats))
    }

    /// The traversal core shared by the sequential path and the inline
    /// (non-splitting) branch of the parallel tasks: drains `acc.stack`,
    /// pruning with the MBTS lower bound and collecting surviving leaf
    /// positions into `acc.pending`.  Pure tree walking — no store access;
    /// the caller flushes the pending set through the pipeline afterwards
    /// (so candidates from every leaf of the subtree coalesce into runs
    /// together) and attributes the filter/verify times.
    fn traverse_into(&self, query: &[f64], epsilon: f64, acc: &mut TraverseAcc<'_>) {
        while let Some(node_id) = acc.stack.pop() {
            acc.stats.nodes_visited += 1;
            let node = &self.nodes[node_id];
            // Lemma 1 with early abandoning: prune as soon as one timestamp
            // escapes the envelope by more than epsilon.
            if node.mbts.exceeds_threshold(query, epsilon) {
                acc.stats.nodes_pruned += 1;
                continue;
            }
            match &node.kind {
                NodeKind::Internal { children } => acc.stack.extend(children.iter().copied()),
                NodeKind::Leaf { positions } => {
                    acc.stats.candidates_generated += positions.len();
                    acc.pending.extend_from_slice(positions);
                }
            }
        }
    }

    /// Multi-threaded variant of [`TsIndex::search`]: the traversal is run
    /// on a work-stealing pool of (up to) `threads` workers, recursively
    /// splitting subtrees into tasks so skewed trees keep every worker busy
    /// ([`SplitPolicy::DepthAdaptive`]).
    ///
    /// The requested count is clamped to the machine's available
    /// parallelism.  This is an extension beyond the paper (in the spirit of
    /// the ParIS / MESSI line of work cited in §2); results are identical to
    /// the sequential query.
    ///
    /// # Errors
    ///
    /// Same as [`TsIndex::search`].
    pub fn search_parallel<S: SeriesStore + Sync>(
        &self,
        store: &S,
        query: &[f64],
        epsilon: f64,
        threads: usize,
    ) -> Result<Vec<usize>> {
        let mut traversal = self.traverse_with(
            store,
            query,
            epsilon,
            &Executor::new(threads),
            SplitPolicy::DepthAdaptive,
            false,
        )?;
        traversal.positions.sort_unstable();
        Ok(traversal.positions)
    }

    /// The work-stealing traversal behind [`TsIndex::search_parallel`] and
    /// [`TsIndex::execute`], with the pool and split policy chosen by the
    /// caller (the scaling ablation and the executor tests construct
    /// [`Executor::exact`] pools to compare policies and to exercise
    /// multi-worker scheduling on machines with few cores).
    ///
    /// Falls back to the sequential traversal (reported as `threads_used ==
    /// 1`) for single-worker pools, empty trees and leaf-only trees.  See
    /// [`ParallelTraversal`] for the exactness guarantees.
    ///
    /// # Errors
    ///
    /// Same as [`TsIndex::search`].
    pub fn traverse_with<S: SeriesStore + Sync>(
        &self,
        store: &S,
        query: &[f64],
        epsilon: f64,
        pool: &Executor,
        policy: SplitPolicy,
        collect: bool,
    ) -> Result<ParallelTraversal> {
        self.validate_query(query)?;
        let Some(root) = self.root else {
            return Ok(ParallelTraversal {
                positions: Vec::new(),
                stats: SearchStats::default(),
                threads_used: 1,
                tasks_executed: 0,
            });
        };
        if pool.threads() <= 1 || matches!(self.nodes[root].kind, NodeKind::Leaf { .. }) {
            let (positions, stats) = self.traverse(store, query, epsilon, &[root], collect)?;
            return Ok(ParallelTraversal {
                positions,
                stats,
                threads_used: 1,
                tasks_executed: 1,
            });
        }

        let init = || TraverseAcc::new(query, epsilon, Vec::new());
        let process = |(node_id, depth): (NodeId, u32),
                       ctx: &mut TaskContext<'_, (NodeId, u32)>,
                       acc: &mut TraverseAcc<'_>|
         -> Result<()> {
            let started = collect.then(Instant::now);
            let verify_before = acc.stats.verify_time;
            acc.stats.nodes_visited += 1;
            let node = &self.nodes[node_id];
            if node.mbts.exceeds_threshold(query, epsilon) {
                acc.stats.nodes_pruned += 1;
            } else {
                match &node.kind {
                    NodeKind::Leaf { positions } => {
                        acc.stats.candidates_generated += positions.len();
                        acc.pending.extend_from_slice(positions);
                    }
                    NodeKind::Internal { children } => {
                        let split = match policy {
                            // Baseline: only the root (depth 0) fans out.
                            SplitPolicy::RootChildren => depth == 0,
                            SplitPolicy::DepthAdaptive => {
                                depth < SPLIT_MIN_DEPTH
                                    || (depth < SPLIT_MAX_DEPTH
                                        && ctx.pending() < ctx.threads() * 2)
                            }
                        };
                        if split {
                            for &child in children {
                                ctx.spawn((child, depth + 1));
                            }
                        } else {
                            debug_assert!(acc.stack.is_empty());
                            acc.stack.extend(children.iter().copied());
                            self.traverse_into(query, epsilon, acc);
                        }
                    }
                }
            }
            // Flush the candidates this task collected before the timing
            // attribution, so its verify share lands inside the task.
            acc.flush(store, collect)?;
            if let Some(t) = started {
                // This task's filter share: everything it spent outside leaf
                // verification (summed across workers — aggregate CPU time).
                let verify_delta = acc.stats.verify_time.saturating_sub(verify_before);
                acc.stats.filter_time += split_filter_time(t.elapsed(), verify_delta);
            }
            Ok(())
        };
        let traversal = pool.traverse(vec![(root, 0u32)], init, process)?;

        let mut positions = Vec::new();
        let mut stats = SearchStats::default();
        for acc in traversal.accumulators {
            positions.extend(acc.results);
            stats.merge(acc.stats);
        }
        Ok(ParallelTraversal {
            positions,
            stats,
            threads_used: traversal.threads,
            tasks_executed: traversal.tasks_executed,
        })
    }

    /// Answers a [`TwinQuery`]: the uniform, instrumented entry point.
    ///
    /// A query carrying [`TwinQuery::parallel`] with more than one (clamped)
    /// thread is routed through the work-stealing traversal
    /// ([`SplitPolicy::DepthAdaptive`]); the outcome's
    /// [`SearchOutcome::threads_used`] reports the pool's worker count (1
    /// when the tree was too small to split or only one worker was
    /// available).
    ///
    /// # Errors
    ///
    /// Returns a length-mismatch error if the query length differs from the
    /// indexed subsequence length, and propagates storage failures.
    pub fn execute<S: SeriesStore + Sync>(
        &self,
        store: &S,
        query: &TwinQuery,
    ) -> Result<SearchOutcome> {
        let started = Instant::now();
        let collect = query.wants_stats();
        let traversal = self.traverse_with(
            store,
            query.values(),
            query.epsilon(),
            &Executor::new(query.threads()),
            SplitPolicy::DepthAdaptive,
            collect,
        )?;
        let ParallelTraversal {
            mut positions,
            stats,
            threads_used,
            ..
        } = traversal;
        // A count-only query without a limit needs neither order nor the
        // positions themselves — skip the sort.
        if query.result_limit().is_some() || !query.is_count_only() {
            positions.sort_unstable();
        }
        if let Some(limit) = query.result_limit() {
            positions.truncate(limit);
        }
        let match_count = positions.len();
        if query.is_count_only() {
            positions = Vec::new();
        }
        // `finish_outcome` derives the sequential filter split; the parallel
        // path keeps the summed per-worker times already in `stats` (which
        // can exceed wall-clock by design).
        Ok(finish_outcome(
            "TS-Index",
            started,
            query,
            positions,
            match_count,
            threads_used,
            stats,
        ))
    }

    /// Returns the `k` subsequences closest to `query` under Chebyshev
    /// distance (ties broken by position), ordered by increasing distance.
    ///
    /// This is an extension beyond the paper: the same MBTS lower bound that
    /// drives Algorithm 1 is used to prune subtrees that cannot improve the
    /// current k-th best distance.
    ///
    /// # Errors
    ///
    /// Same as [`TsIndex::search`].
    pub fn top_k<S: SeriesStore>(
        &self,
        store: &S,
        query: &[f64],
        k: usize,
    ) -> Result<Vec<TopKMatch>> {
        self.validate_query(query)?;
        if k == 0 {
            return Ok(Vec::new());
        }
        let Some(root) = self.root else {
            return Ok(Vec::new());
        };
        let verifier = Verifier::new(query);
        let mut buf = Scratch::take(query.len());
        // Max-heap on distance keeps the k best seen so far.
        let mut best: Vec<TopKMatch> = Vec::with_capacity(k + 1);
        let mut bound = f64::INFINITY;
        // Depth-first traversal ordered by MBTS distance (closest child
        // first) so the bound tightens quickly.
        let mut stack: Vec<(f64, NodeId)> =
            vec![(self.nodes[root].mbts.distance_to_sequence(query), root)];
        while let Some((lower_bound, node_id)) = stack.pop() {
            if lower_bound > bound {
                continue;
            }
            match &self.nodes[node_id].kind {
                NodeKind::Internal { children } => {
                    let mut ordered: Vec<(f64, NodeId)> = children
                        .iter()
                        .map(|&c| (self.nodes[c].mbts.distance_to_sequence(query), c))
                        .filter(|&(d, _)| d <= bound)
                        .collect();
                    // Push the farthest first so the closest is popped next.
                    ordered
                        .sort_by(|a, b| b.0.partial_cmp(&a.0).unwrap_or(std::cmp::Ordering::Equal));
                    stack.extend(ordered);
                }
                NodeKind::Leaf { positions } => {
                    for &p in positions {
                        store.read_into(p as usize, &mut buf)?;
                        let d = verifier.chebyshev(&buf);
                        if d < bound || best.len() < k {
                            best.push(TopKMatch {
                                position: p as usize,
                                distance: d,
                            });
                            best.sort_by(|a, b| {
                                a.distance
                                    .partial_cmp(&b.distance)
                                    .unwrap_or(std::cmp::Ordering::Equal)
                                    .then(a.position.cmp(&b.position))
                            });
                            best.truncate(k);
                            if best.len() == k {
                                bound = best[k - 1].distance;
                            }
                        }
                    }
                }
            }
        }
        Ok(best)
    }

    fn validate_query(&self, query: &[f64]) -> Result<()> {
        if query.len() != self.config.subsequence_len {
            return Err(StorageError::Core(ts_core::TsError::LengthMismatch {
                left: query.len(),
                right: self.config.subsequence_len,
            }));
        }
        Ok(())
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::config::TsIndexConfig;
    use ts_data::generators::{eeg_like, insect_like, GeneratorConfig};
    use ts_storage::{InMemorySeries, PerSubsequenceNormalized};
    use ts_sweep::Sweepline;

    fn store(n: usize) -> InMemorySeries {
        InMemorySeries::new_znormalized(&insect_like(GeneratorConfig::new(n, 23))).unwrap()
    }

    fn config(len: usize) -> TsIndexConfig {
        TsIndexConfig::new(len)
            .unwrap()
            .with_capacities(4, 10)
            .unwrap()
    }

    #[test]
    fn results_match_sweepline_exactly() {
        let s = store(3_000);
        let len = 100;
        let idx = TsIndex::build(&s, config(len)).unwrap();
        let sweep = Sweepline::new();
        for (start, eps) in [(7usize, 0.5), (800, 1.0), (2_500, 1.5), (1_600, 0.75)] {
            let query = s.read(start, len).unwrap();
            let expected = sweep.search(&s, &query, eps).unwrap();
            let got = idx.search(&s, &query, eps).unwrap();
            assert_eq!(got, expected, "start={start} eps={eps}");
            assert!(got.contains(&start), "self-match must be found");
        }
    }

    #[test]
    fn matches_sweepline_on_eeg_like_data() {
        let s = InMemorySeries::new_znormalized(&eeg_like(GeneratorConfig::new(4_000, 3))).unwrap();
        let len = 100;
        let idx = TsIndex::build(&s, config(len)).unwrap();
        let query = s.read(2_000, len).unwrap();
        for eps in [0.1, 0.3, 0.5] {
            assert_eq!(
                idx.search(&s, &query, eps).unwrap(),
                Sweepline::new().search(&s, &query, eps).unwrap()
            );
        }
    }

    #[test]
    fn works_under_per_subsequence_normalization() {
        let raw = InMemorySeries::new(insect_like(GeneratorConfig::new(2_000, 31))).unwrap();
        let norm = PerSubsequenceNormalized::new(raw);
        let len = 80;
        let idx = TsIndex::build(&norm, config(len)).unwrap();
        let query = norm.read(444, len).unwrap();
        for eps in [0.2, 0.5] {
            assert_eq!(
                idx.search(&norm, &query, eps).unwrap(),
                Sweepline::new().search(&norm, &query, eps).unwrap()
            );
        }
    }

    #[test]
    fn works_on_raw_values() {
        let s = InMemorySeries::new(insect_like(GeneratorConfig::new(2_500, 7))).unwrap();
        let len = 100;
        let idx = TsIndex::build(&s, config(len)).unwrap();
        let query = s.read(1_000, len).unwrap();
        for eps in [0.5, 2.0] {
            assert_eq!(
                idx.search(&s, &query, eps).unwrap(),
                Sweepline::new().search(&s, &query, eps).unwrap()
            );
        }
    }

    #[test]
    fn stats_are_consistent_and_pruning_happens() {
        let s = store(4_000);
        let len = 100;
        let idx = TsIndex::build(&s, config(len)).unwrap();
        let query = s.read(50, len).unwrap();
        let (results, stats) = idx.search_with_stats(&s, &query, 0.5).unwrap();
        assert_eq!(stats.matches, results.len());
        assert!(stats.candidates >= stats.matches);
        assert!(stats.candidates < s.subsequence_count(len), "must prune");
        assert!(stats.nodes_pruned > 0);
        assert_eq!(idx.count(&s, &query, 0.5).unwrap(), results.len());
    }

    #[test]
    fn empty_threshold_still_finds_self() {
        let s = store(1_000);
        let len = 60;
        let idx = TsIndex::build(&s, config(len)).unwrap();
        let query = s.read(123, len).unwrap();
        let hits = idx.search(&s, &query, 0.0).unwrap();
        assert!(hits.contains(&123));
    }

    #[test]
    fn rejects_wrong_query_length() {
        let s = store(500);
        let idx = TsIndex::build(&s, config(50)).unwrap();
        assert!(idx.search(&s, &vec![0.0; 49], 0.5).is_err());
        assert!(idx.top_k(&s, &vec![0.0; 49], 3).is_err());
        assert!(idx.search_parallel(&s, &vec![0.0; 49], 0.5, 2).is_err());
    }

    #[test]
    fn parallel_matches_sequential() {
        let s = store(5_000);
        let len = 100;
        let idx = TsIndex::build(&s, config(len)).unwrap();
        for start in [10usize, 2_000, 4_000] {
            let query = s.read(start, len).unwrap();
            let sequential = idx.search(&s, &query, 1.0).unwrap();
            for threads in [1, 2, 4, 16] {
                assert_eq!(
                    idx.search_parallel(&s, &query, 1.0, threads).unwrap(),
                    sequential
                );
            }
        }
    }

    #[test]
    fn execute_routes_parallel_and_reports_stats() {
        let s = store(5_000);
        let len = 100;
        let idx = TsIndex::build(&s, config(len)).unwrap();
        let query = s.read(2_000, len).unwrap();
        let sequential = idx.search(&s, &query, 1.0).unwrap();

        let outcome = idx
            .execute(
                &s,
                &TwinQuery::new(query.clone(), 1.0)
                    .parallel(4)
                    .collect_stats(),
            )
            .unwrap();
        assert_eq!(outcome.positions, sequential);
        assert_eq!(outcome.match_count, sequential.len());
        assert_eq!(
            outcome.threads_used,
            ts_core::exec::clamp_threads(4),
            "the outcome reports the clamped pool width (1 on a 1-core box)"
        );
        assert!(outcome.stats_consistent());
        let stats = outcome.stats.unwrap();
        assert!(stats.nodes_pruned > 0);
        assert_eq!(outcome.method, "TS-Index");

        // Options compose with the parallel path.
        let limited = idx
            .execute(&s, &TwinQuery::new(query.clone(), 1.0).parallel(4).limit(3))
            .unwrap();
        assert_eq!(limited.positions, sequential[..3.min(sequential.len())]);
        let counted = idx
            .execute(&s, &TwinQuery::new(query, 1.0).count_only())
            .unwrap();
        assert!(counted.positions.is_empty());
        assert_eq!(counted.match_count, sequential.len());
    }

    /// A deliberately unbalanced series (see
    /// [`ts_data::generators::skewed_like`]): the one-level root split
    /// serialises on the dominant child here; the depth-adaptive split keeps
    /// splitting inside it.
    fn skewed_store(n: usize) -> InMemorySeries {
        InMemorySeries::new(ts_data::generators::skewed_like(
            GeneratorConfig::new(n, 0x5EED),
            0.15,
        ))
        .unwrap()
    }

    #[test]
    fn work_stealing_matches_sequential_on_skewed_tree() {
        let s = skewed_store(6_000);
        let len = 100;
        let idx = TsIndex::build(&s, config(len)).unwrap();
        for start in [50usize, 3_000, 5_500] {
            let query = s.read(start, len).unwrap();
            for eps in [0.05, 0.5, 5.0] {
                let sequential = idx.search(&s, &query, eps).unwrap();
                // `Executor::exact` bypasses the clamp so multi-worker
                // stealing is exercised even on a single-core container.
                for threads in [2usize, 3, 4, 8] {
                    for policy in [SplitPolicy::RootChildren, SplitPolicy::DepthAdaptive] {
                        let mut traversal = idx
                            .traverse_with(&s, &query, eps, &Executor::exact(threads), policy, true)
                            .unwrap();
                        traversal.positions.sort_unstable();
                        assert_eq!(
                            traversal.positions, sequential,
                            "{policy:?} at {threads} threads (start={start}, eps={eps})"
                        );
                        assert_eq!(traversal.threads_used, threads);
                        // Exact stats merge: node counters must equal the
                        // sequential traversal's exactly.
                        let (_, seq_stats) = idx.search_with_stats(&s, &query, eps).unwrap();
                        assert_eq!(traversal.stats.nodes_visited, seq_stats.nodes_visited);
                        assert_eq!(traversal.stats.nodes_pruned, seq_stats.nodes_pruned);
                        assert_eq!(traversal.stats.candidates_generated, seq_stats.candidates);
                        assert_eq!(
                            traversal.stats.candidates_verified,
                            traversal.stats.candidates_generated
                        );
                    }
                }
            }
        }
    }

    #[test]
    fn depth_split_engages_more_workers_than_root_split_on_skewed_tree() {
        let s = skewed_store(8_000);
        let len = 100;
        let idx = TsIndex::build(&s, config(len)).unwrap();
        let query = s.read(1_000, len).unwrap();
        let eps = 1.0;
        let pool = Executor::exact(4);

        let root = idx
            .traverse_with(&s, &query, eps, &pool, SplitPolicy::RootChildren, false)
            .unwrap();
        let depth = idx
            .traverse_with(&s, &query, eps, &pool, SplitPolicy::DepthAdaptive, false)
            .unwrap();

        // The satellite assertion: a deliberately unbalanced tree still
        // reports a multi-worker traversal.
        assert!(
            depth.threads_used > 1,
            "threads_used = {}",
            depth.threads_used
        );
        assert_eq!(depth.threads_used, 4);

        // Root-split produces exactly (1 + root children) tasks; the
        // depth-adaptive policy must split strictly deeper than that, which
        // is what lets idle workers steal inside the dominant subtree.
        assert!(
            depth.tasks_executed > root.tasks_executed,
            "depth-adaptive split produced {} tasks vs root-split {}",
            depth.tasks_executed,
            root.tasks_executed
        );

        let mut a = root.positions.clone();
        let mut b = depth.positions.clone();
        a.sort_unstable();
        b.sort_unstable();
        assert_eq!(a, b, "both policies agree on the result set");

        // Wall-clock superiority needs real cores; only measurable where
        // the machine actually has them.
        if ts_core::exec::available_parallelism() >= 4 {
            let best = |policy: SplitPolicy| {
                (0..3)
                    .map(|_| {
                        let started = std::time::Instant::now();
                        idx.traverse_with(&s, &query, eps, &pool, policy, false)
                            .unwrap();
                        started.elapsed()
                    })
                    .min()
                    .unwrap()
            };
            let root_best = best(SplitPolicy::RootChildren);
            let depth_best = best(SplitPolicy::DepthAdaptive);
            assert!(
                depth_best < root_best.mul_f64(1.25),
                "depth split must not lose to root split on a skewed tree \
                 ({depth_best:?} vs {root_best:?})"
            );
        }
    }

    #[test]
    fn top_k_matches_brute_force() {
        let s = store(2_000);
        let len = 50;
        let idx = TsIndex::build(&s, config(len)).unwrap();
        let query = s.read(700, len).unwrap();
        for k in [1usize, 5, 20] {
            let got = idx.top_k(&s, &query, k).unwrap();
            assert_eq!(got.len(), k.min(s.subsequence_count(len)));
            // Brute force.
            let mut all: Vec<TopKMatch> = (0..s.subsequence_count(len))
                .map(|p| {
                    let cand = s.read(p, len).unwrap();
                    TopKMatch {
                        position: p,
                        distance: ts_core::distance::chebyshev(&query, &cand).unwrap(),
                    }
                })
                .collect();
            all.sort_by(|a, b| {
                a.distance
                    .partial_cmp(&b.distance)
                    .unwrap()
                    .then(a.position.cmp(&b.position))
            });
            for (g, e) in got.iter().zip(all.iter().take(k)) {
                assert!((g.distance - e.distance).abs() < 1e-12);
            }
            // Distances are non-decreasing.
            assert!(got.windows(2).all(|w| w[0].distance <= w[1].distance));
            // k=1 must be the query itself at distance 0.
            if k == 1 {
                assert_eq!(got[0].position, 700);
                assert_eq!(got[0].distance, 0.0);
            }
        }
        assert!(idx.top_k(&s, &query, 0).unwrap().is_empty());
    }

    #[test]
    fn larger_epsilon_is_superset() {
        let s = store(2_500);
        let len = 100;
        let idx = TsIndex::build(&s, config(len)).unwrap();
        let query = s.read(1_111, len).unwrap();
        let small = idx.search(&s, &query, 0.4).unwrap();
        let large = idx.search(&s, &query, 1.4).unwrap();
        for p in &small {
            assert!(large.contains(p));
        }
        assert!(small.len() <= large.len());
    }
}

//! Multi-tenant daemon experiment (beyond the paper): concurrent clients
//! driving mixed query/append traffic through `twin serve`, with tail
//! latency percentiles and a kill-and-restart durability check.
//!
//! Phase 1 boots a [`ts_serve::Server`] on a loopback TCP socket, creates
//! two tenants (TS-Index and iSAX over the EEG stand-in prefix), and lets
//! four concurrent clients issue interleaved queries and appends.  Every
//! operation must succeed — a failed request fails the run.  Per-operation
//! latencies are recorded client-side and reported as p50/p95/p99
//! percentiles alongside means, because a daemon's tail is what its
//! clients actually feel.
//!
//! Phase 2 streams appends into both tenants, kills the daemon mid-stream
//! (no drain, no replies — crash semantics), restarts it on the same data
//! directory and verifies that every *acknowledged* append survived: the
//! recovered series answers probe queries byte-identically to a sequential
//! reference replayed in acknowledgement order (each append ack carries
//! the post-append series length, which is its position in the tenant's
//! serialization order).
//!
//! The emitted `BENCH_serve.json` records the operation mix, the latency
//! summaries and the recovery outcome, and is trend-checked in CI.

use std::sync::atomic::{AtomicUsize, Ordering};
use std::sync::Arc;
use std::time::Instant;

use ts_bench::json::{write_bench_json, JsonValue};
use ts_bench::{generate, latency_summary_json, HarnessOptions};
use ts_core::stats::LatencySummary;
use ts_serve::{Client, QuerySpec, Server, ServerConfig};
use twin_search::{Dataset, Method, TenantRegistry, TenantSpec, TwinQuery};

/// Concurrent clients in the mixed-traffic phase.
const CLIENTS: usize = 4;

/// The tenants: one per index method under test.
const TENANTS: [(&str, Method); 2] = [("eeg-tsindex", Method::TsIndex), ("eeg-isax", Method::Isax)];

/// Subsequence length for every tenant.
const LEN: usize = 100;

/// Points per append in both phases.
const CHUNK: usize = 64;

/// An acknowledged append: the post-append series length and the chunk.
type Ack = (u64, Vec<f64>);

fn main() {
    let options = HarnessOptions::from_args();
    let series = Arc::new(generate(Dataset::Eeg, &options));
    let epsilon = Dataset::Eeg.default_epsilon_raw();
    let base = (series.len() / 2).max(LEN + 1);
    let ops_per_client = (options.queries * 4).max(16);
    let data_dir = std::env::temp_dir().join(format!("twin_exp_serve_{}", std::process::id()));
    std::fs::remove_dir_all(&data_dir).ok();

    let handle =
        Server::start_tcp("127.0.0.1:0", ServerConfig::new(&data_dir)).expect("server start");
    let addr = handle.tcp_addr().expect("tcp endpoint");
    {
        let mut client = Client::connect_tcp(addr).expect("connect");
        for (name, method) in TENANTS {
            client
                .create_tenant(name, method, LEN, &series[..base])
                .expect("create tenant");
        }
    }
    println!(
        "== serve | dataset=EEG (synthetic stand-in, {} points, scale 1/{}) | \
         {CLIENTS} clients x {ops_per_client} ops over {} tenants, base {base} points each",
        series.len(),
        options.scale,
        TENANTS.len(),
    );

    // ---- Phase 1: mixed concurrent traffic ------------------------------
    let failed = Arc::new(AtomicUsize::new(0));
    let mut workers = Vec::new();
    for c in 0..CLIENTS {
        let failed = Arc::clone(&failed);
        let series = Arc::clone(&series);
        workers.push(std::thread::spawn(move || {
            let (tenant, _) = TENANTS[c % TENANTS.len()];
            let mut client = Client::connect_tcp(addr).expect("connect");
            let mut query_ms = Vec::new();
            let mut append_ms = Vec::new();
            let mut acks: Vec<Ack> = Vec::new();
            for i in 0..ops_per_client {
                if i % 4 == 3 {
                    // Every fourth op appends a fresh chunk from the
                    // stream suffix.
                    let span = series.len() - base - CHUNK;
                    let start = base + ((c * ops_per_client + i) * CHUNK) % span;
                    let chunk = series[start..start + CHUNK].to_vec();
                    let started = Instant::now();
                    match client.append(tenant, &chunk) {
                        Ok((new_len, _)) => acks.push((new_len, chunk)),
                        Err(_) => {
                            failed.fetch_add(1, Ordering::Relaxed);
                        }
                    }
                    append_ms.push(started.elapsed().as_secs_f64() * 1e3);
                } else {
                    // Probe queries over the shared prefix are valid
                    // regardless of interleaved appends.
                    let qstart = (c * 131 + i * 37) % (base - LEN);
                    let probe = series[qstart..qstart + LEN].to_vec();
                    let started = Instant::now();
                    if client
                        .query(tenant, QuerySpec::new(probe, epsilon))
                        .is_err()
                    {
                        failed.fetch_add(1, Ordering::Relaxed);
                    }
                    query_ms.push(started.elapsed().as_secs_f64() * 1e3);
                }
            }
            (tenant, query_ms, append_ms, acks)
        }));
    }
    let mut query_ms = Vec::new();
    let mut append_ms = Vec::new();
    // Acknowledged appends per tenant, later extended by the kill phase.
    let mut acked: Vec<(&'static str, Vec<Ack>)> = TENANTS
        .iter()
        .map(|(name, _)| (*name, Vec::new()))
        .collect();
    for worker in workers {
        let (tenant, q, a, acks) = worker.join().expect("client thread");
        query_ms.extend(q);
        append_ms.extend(a);
        let slot = acked
            .iter_mut()
            .find(|(name, _)| *name == tenant)
            .expect("known tenant");
        slot.1.extend(acks);
    }
    let failed = failed.load(Ordering::Relaxed);
    assert_eq!(failed, 0, "{failed} requests failed under concurrent load");

    println!(
        "{:<8} {:>6} {:>12} {:>10} {:>10} {:>10}",
        "op", "count", "mean (ms)", "p50", "p95", "p99"
    );
    let print_summary = |label: &str, samples: &[f64]| {
        let s = LatencySummary::from_samples(samples);
        println!(
            "{label:<8} {:>6} {:>12.3} {:>10.3} {:>10.3} {:>10.3}",
            s.count, s.mean, s.p50, s.p95, s.p99
        );
    };
    print_summary("query", &query_ms);
    print_summary("append", &append_ms);

    // ---- Phase 2: kill mid-append, restart, verify recovery -------------
    let mut streamers = Vec::new();
    for (tenant, _) in TENANTS {
        let series = Arc::clone(&series);
        streamers.push(std::thread::spawn(move || {
            let mut client = Client::connect_tcp(addr).expect("connect");
            let mut acks: Vec<Ack> = Vec::new();
            for round in 0.. {
                let span = series.len() - base - CHUNK;
                let start = base + (round * CHUNK + 17) % span;
                let chunk = series[start..start + CHUNK].to_vec();
                // The daemon dies under this loop; the first failed call
                // (connection reset or no reply) ends the stream.
                match client.append(tenant, &chunk) {
                    Ok((new_len, _)) => acks.push((new_len, chunk)),
                    Err(_) => break,
                }
            }
            (tenant, acks)
        }));
    }
    std::thread::sleep(std::time::Duration::from_millis(150));
    handle.kill();
    for streamer in streamers {
        let (tenant, acks) = streamer.join().expect("streamer thread");
        let slot = acked
            .iter_mut()
            .find(|(name, _)| *name == tenant)
            .expect("known tenant");
        slot.1.extend(acks);
    }

    // Restart on the same directory and compare against a sequential
    // reference replayed in acknowledgement order.
    let handle =
        Server::start_tcp("127.0.0.1:0", ServerConfig::new(&data_dir)).expect("server restart");
    let mut client = Client::connect_tcp(handle.tcp_addr().expect("tcp")).expect("connect");
    let reference_dir = data_dir.join("reference");
    let reference = TenantRegistry::open(&reference_dir).expect("reference registry");
    let mut recovery_rows = Vec::new();
    for (tenant_name, method) in TENANTS {
        let acks = &mut acked
            .iter_mut()
            .find(|(name, _)| *name == tenant_name)
            .expect("known tenant")
            .1;
        acks.sort_by_key(|(len, _)| *len);
        let tenant = reference
            .create(tenant_name, TenantSpec::new(method, LEN), &series[..base])
            .expect("reference create");
        for (acked_len, chunk) in acks.iter() {
            let (reached, _) = tenant.append(chunk).expect("reference append");
            assert_eq!(
                reached as u64, *acked_len,
                "{tenant_name}: ack order is not the serial order"
            );
        }
        let acked_len = tenant.len();
        let stats = client.stats(Some(tenant_name)).expect("stats");
        let recovered = stats[0].series_len as usize;
        assert!(
            recovered >= acked_len,
            "{tenant_name}: lost acknowledged points ({recovered} < {acked_len})"
        );
        assert!(
            recovered <= acked_len + CHUNK,
            "{tenant_name}: recovered {recovered} exceeds acked {acked_len} + one in-flight chunk"
        );
        let mut identical = true;
        for qstart in [0, acked_len / 3, acked_len - LEN] {
            let probe = tenant.read(qstart, LEN).expect("reference read");
            let served = client
                .query(tenant_name, QuerySpec::new(probe.clone(), epsilon))
                .expect("recovered query");
            let expected: Vec<u64> = tenant
                .execute(&TwinQuery::new(probe, epsilon))
                .expect("reference query")
                .positions
                .iter()
                .map(|&p| p as u64)
                .collect();
            // Windows overlapping the unacknowledged in-flight tail (if
            // any) exist only on the server; compare the acked prefix.
            let served_acked: Vec<u64> = served
                .positions
                .iter()
                .copied()
                .filter(|&p| (p as usize) + LEN <= acked_len)
                .collect();
            identical &= served_acked == expected;
        }
        assert!(
            identical,
            "{tenant_name}: recovered answers differ from the sequential reference"
        );
        println!(
            "recovery {tenant_name:<12} acked {acked_len:>8} recovered {recovered:>8} byte-identical yes"
        );
        recovery_rows.push(JsonValue::obj(vec![
            ("tenant", JsonValue::Str(tenant_name.to_string())),
            ("method", JsonValue::Str(method.name().to_string())),
            ("acked_len", JsonValue::Int(acked_len as u64)),
            ("recovered_len", JsonValue::Int(recovered as u64)),
            ("byte_identical", JsonValue::Bool(identical)),
        ]));
    }

    // Daemon-side per-tenant accounting (wire latency percentiles).
    let tenant_stats: Vec<JsonValue> = client
        .stats(None)
        .expect("stats")
        .iter()
        .map(|t| {
            JsonValue::obj(vec![
                ("tenant", JsonValue::Str(t.name.clone())),
                ("method", JsonValue::Str(t.method.clone())),
                ("series_len", JsonValue::Int(t.series_len)),
                ("points_appended", JsonValue::Int(t.points_appended)),
                ("append_calls", JsonValue::Int(t.append_calls)),
                ("queries", JsonValue::Int(t.queries)),
                ("query_p50_ms", JsonValue::Num(t.latency_ms.p50)),
                ("query_p95_ms", JsonValue::Num(t.latency_ms.p95)),
                ("query_p99_ms", JsonValue::Num(t.latency_ms.p99)),
            ])
        })
        .collect();
    handle.shutdown_and_wait();

    let query_summary = LatencySummary::from_samples(&query_ms);
    let append_summary = LatencySummary::from_samples(&append_ms);
    let report = JsonValue::obj(vec![
        ("figure", JsonValue::Str("serve".to_string())),
        (
            "title",
            JsonValue::Str(
                "multi-tenant daemon: concurrent mixed traffic + crash recovery".to_string(),
            ),
        ),
        ("scale", JsonValue::Int(options.scale as u64)),
        ("queries", JsonValue::Int(options.queries as u64)),
        ("clients", JsonValue::Int(CLIENTS as u64)),
        ("tenants", JsonValue::Int(TENANTS.len() as u64)),
        (
            "ops_total",
            JsonValue::Int((CLIENTS * ops_per_client) as u64),
        ),
        ("failed", JsonValue::Int(failed as u64)),
        (
            "operations",
            JsonValue::Arr(vec![
                JsonValue::obj(vec![
                    ("op", JsonValue::Str("query".to_string())),
                    ("avg_ms", JsonValue::Num(query_summary.mean)),
                    ("latency", latency_summary_json(&query_ms)),
                ]),
                JsonValue::obj(vec![
                    ("op", JsonValue::Str("append".to_string())),
                    ("avg_ms", JsonValue::Num(append_summary.mean)),
                    ("latency", latency_summary_json(&append_ms)),
                ]),
            ]),
        ),
        ("tenant_stats", JsonValue::Arr(tenant_stats)),
        (
            "recovery",
            JsonValue::obj(vec![
                ("killed_mid_append", JsonValue::Bool(true)),
                ("tenants", JsonValue::Arr(recovery_rows)),
            ]),
        ),
    ]);
    match write_bench_json("serve", &report) {
        Ok(path) => println!("wrote {}", path.display()),
        Err(e) => eprintln!("warning: could not write BENCH_serve.json: {e}"),
    }
    std::fs::remove_dir_all(&data_dir).ok();
    println!(
        "expected shape: zero failed requests under concurrent load; appends dominated by \
         fsync; restart after kill recovers every acknowledged append byte-identically."
    );
}

//! Chunked reading of streamed values from any `BufRead` source.

use std::io::BufRead;

use ts_storage::{Result, StorageError};

/// Reads whitespace/newline-separated `f64` values from a `BufRead` source
/// in chunks of a fixed size — the shape `twin ingest` and the streaming
/// example feed into a live engine.
///
/// The reader is an iterator of `Result<Vec<f64>>`: each item is a full
/// chunk, except possibly the last one, which carries whatever remained in
/// the stream.  Parse failures report the 1-based line number and the
/// offending token.
#[derive(Debug)]
pub struct ChunkReader<R> {
    source: R,
    chunk_size: usize,
    /// Values parsed but not yet emitted.
    pending: Vec<f64>,
    /// 1-based line number for error reporting.
    line: usize,
    done: bool,
}

impl<R: BufRead> ChunkReader<R> {
    /// Creates a reader emitting chunks of `chunk_size` values
    /// (`chunk_size` is clamped to at least 1).
    pub fn new(source: R, chunk_size: usize) -> Self {
        Self {
            source,
            chunk_size: chunk_size.max(1),
            pending: Vec::new(),
            line: 0,
            done: false,
        }
    }

    /// Parses lines until a full chunk is buffered or the stream ends.
    fn fill(&mut self) -> Result<()> {
        let mut buf = String::new();
        while self.pending.len() < self.chunk_size && !self.done {
            buf.clear();
            if self.source.read_line(&mut buf)? == 0 {
                self.done = true;
                break;
            }
            self.line += 1;
            for token in buf.split_whitespace() {
                let value: f64 = token.parse().map_err(|_| StorageError::Parse {
                    line: self.line,
                    token: token.to_string(),
                })?;
                self.pending.push(value);
            }
        }
        Ok(())
    }
}

impl<R: BufRead> Iterator for ChunkReader<R> {
    type Item = Result<Vec<f64>>;

    fn next(&mut self) -> Option<Self::Item> {
        if let Err(e) = self.fill() {
            self.done = true;
            self.pending.clear();
            return Some(Err(e));
        }
        if self.pending.is_empty() {
            return None;
        }
        let take = self.pending.len().min(self.chunk_size);
        Some(Ok(self.pending.drain(..take).collect()))
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    fn chunks_of(input: &str, size: usize) -> Vec<Vec<f64>> {
        ChunkReader::new(input.as_bytes(), size)
            .map(|c| c.unwrap())
            .collect()
    }

    #[test]
    fn splits_a_stream_into_fixed_chunks() {
        let got = chunks_of("1\n2\n3\n4\n5\n", 2);
        assert_eq!(got, vec![vec![1.0, 2.0], vec![3.0, 4.0], vec![5.0]]);
    }

    #[test]
    fn accepts_multiple_values_per_line_and_blank_lines() {
        let got = chunks_of("1 2 3\n\n4\t5\n", 4);
        assert_eq!(got, vec![vec![1.0, 2.0, 3.0, 4.0], vec![5.0]]);
    }

    #[test]
    fn empty_stream_yields_nothing() {
        assert!(chunks_of("", 8).is_empty());
        assert!(chunks_of("\n\n", 8).is_empty());
    }

    #[test]
    fn chunk_size_zero_is_clamped() {
        let got = chunks_of("1\n2\n", 0);
        assert_eq!(got, vec![vec![1.0], vec![2.0]]);
    }

    #[test]
    fn parse_errors_name_the_line_and_stop_the_stream() {
        let mut reader = ChunkReader::new("1\nnope\n3\n".as_bytes(), 10);
        match reader.next() {
            Some(Err(StorageError::Parse { line, token })) => {
                assert_eq!(line, 2);
                assert_eq!(token, "nope");
            }
            other => panic!("expected parse error, got {other:?}"),
        }
        assert!(reader.next().is_none(), "errors end the iteration");
    }
}

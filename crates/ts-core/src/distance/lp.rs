//! Generic Minkowski (Lp) distances.
//!
//! The related work (§2) discusses an index for arbitrary Lp norms [Yi &
//! Faloutsos, VLDB 2000]; this module provides the general distance so the
//! relationship between the Chebyshev (p → ∞), Manhattan (p = 1) and
//! Euclidean (p = 2) metrics can be exercised and property-tested.

use super::check_same_length;
use crate::error::{Result, TsError};

/// Minkowski distance of order `p`:
/// `(Σ_i |a_i - b_i|^p)^(1/p)` for finite `p >= 1`,
/// and the Chebyshev distance for `p = f64::INFINITY`.
///
/// # Errors
///
/// Returns [`TsError::InvalidParameter`] for `p < 1` or NaN, and the usual
/// length errors for malformed inputs.
pub fn lp_distance(a: &[f64], b: &[f64], p: f64) -> Result<f64> {
    if p.is_nan() || p < 1.0 {
        return Err(TsError::InvalidParameter(format!(
            "Lp exponent must be >= 1, got {p}"
        )));
    }
    check_same_length(a, b)?;
    if p.is_infinite() {
        return super::chebyshev(a, b);
    }
    // Special-case the common exponents to avoid powf in hot paths.
    if (p - 1.0).abs() < f64::EPSILON {
        return Ok(a.iter().zip(b).map(|(x, y)| (x - y).abs()).sum());
    }
    if (p - 2.0).abs() < f64::EPSILON {
        return super::euclidean(a, b);
    }
    let sum: f64 = a.iter().zip(b).map(|(x, y)| (x - y).abs().powf(p)).sum();
    Ok(sum.powf(1.0 / p))
}

/// Alias for [`lp_distance`] using the more common "Minkowski" name.
///
/// # Errors
///
/// Same as [`lp_distance`].
pub fn minkowski(a: &[f64], b: &[f64], p: f64) -> Result<f64> {
    lp_distance(a, b, p)
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn manhattan_euclidean_chebyshev_special_cases() {
        let a = [0.0, 0.0, 0.0];
        let b = [1.0, -2.0, 2.0];
        assert!((lp_distance(&a, &b, 1.0).unwrap() - 5.0).abs() < 1e-12);
        assert!((lp_distance(&a, &b, 2.0).unwrap() - 3.0).abs() < 1e-12);
        assert_eq!(lp_distance(&a, &b, f64::INFINITY).unwrap(), 2.0);
    }

    #[test]
    fn general_exponent() {
        let a = [0.0, 0.0];
        let b = [1.0, 1.0];
        let d = lp_distance(&a, &b, 3.0).unwrap();
        assert!((d - 2.0_f64.powf(1.0 / 3.0)).abs() < 1e-12);
    }

    #[test]
    fn rejects_bad_exponent() {
        assert!(lp_distance(&[1.0], &[2.0], 0.5).is_err());
        assert!(lp_distance(&[1.0], &[2.0], f64::NAN).is_err());
    }

    #[test]
    fn lp_decreases_with_p() {
        // For fixed vectors, the Lp norm is non-increasing in p.
        let a = [0.3, -4.0, 2.0, 1.1];
        let b = [1.3, -2.0, 2.5, 0.0];
        let mut prev = f64::INFINITY;
        for p in [1.0, 1.5, 2.0, 3.0, 8.0, f64::INFINITY] {
            let d = lp_distance(&a, &b, p).unwrap();
            assert!(d <= prev + 1e-12, "L{p} = {d} should be <= {prev}");
            prev = d;
        }
    }

    #[test]
    fn minkowski_alias() {
        let a = [1.0, 2.0];
        let b = [4.0, 6.0];
        assert_eq!(
            minkowski(&a, &b, 2.0).unwrap(),
            lp_distance(&a, &b, 2.0).unwrap()
        );
    }
}

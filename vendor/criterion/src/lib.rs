//! Offline stand-in for the `criterion` crate.
//!
//! The build environment has no crates.io access, so this vendored crate
//! implements the benchmarking surface the `ts-bench` benches use:
//! [`Criterion`], [`BenchmarkId`], benchmark groups with
//! `sample_size`/`warm_up_time`/`measurement_time`, `bench_function`,
//! `bench_with_input`, [`Bencher::iter`], and the [`criterion_group!`] /
//! [`criterion_main!`] macros.
//!
//! Statistics are deliberately simple: each benchmark runs a short warm-up,
//! then `sample_size` timed samples of an adaptively chosen iteration count,
//! and reports min/median/mean per-iteration times on stdout. There is no
//! outlier analysis, plotting, or saved baseline — but timings are real, so
//! relative comparisons between methods remain meaningful.

#![forbid(unsafe_code)]
#![warn(missing_docs)]

use std::fmt::Display;
use std::time::{Duration, Instant};

pub use std::hint::black_box;

/// Identifies one benchmark within a group, e.g. `method/epsilon`.
#[derive(Debug, Clone, PartialEq, Eq)]
pub struct BenchmarkId {
    id: String,
}

impl BenchmarkId {
    /// An id composed of a function name and a parameter value.
    pub fn new(function_name: impl Into<String>, parameter: impl Display) -> Self {
        Self {
            id: format!("{}/{}", function_name.into(), parameter),
        }
    }

    /// An id that is only a parameter value.
    pub fn from_parameter(parameter: impl Display) -> Self {
        Self {
            id: parameter.to_string(),
        }
    }
}

/// Conversion accepted wherever a benchmark id is expected (`&str`, `String`
/// or [`BenchmarkId`]).
pub trait IntoBenchmarkId {
    /// Converts to a [`BenchmarkId`].
    fn into_benchmark_id(self) -> BenchmarkId;
}

impl IntoBenchmarkId for BenchmarkId {
    fn into_benchmark_id(self) -> BenchmarkId {
        self
    }
}

impl IntoBenchmarkId for &str {
    fn into_benchmark_id(self) -> BenchmarkId {
        BenchmarkId {
            id: self.to_string(),
        }
    }
}

impl IntoBenchmarkId for String {
    fn into_benchmark_id(self) -> BenchmarkId {
        BenchmarkId { id: self }
    }
}

/// Timing loop handed to benchmark closures.
pub struct Bencher {
    warm_up: Duration,
    measurement: Duration,
    sample_size: usize,
    samples_ns: Vec<f64>,
}

impl Bencher {
    /// Times `routine`, storing per-iteration samples for the report.
    pub fn iter<O>(&mut self, mut routine: impl FnMut() -> O) {
        // Warm-up: run until the warm-up budget elapses at least once.
        let warm_start = Instant::now();
        let mut warm_iters = 0u64;
        while warm_start.elapsed() < self.warm_up || warm_iters == 0 {
            black_box(routine());
            warm_iters += 1;
            if warm_iters >= 1_000_000 {
                break;
            }
        }
        let per_iter = warm_start.elapsed().as_secs_f64() / warm_iters as f64;

        // Choose an iteration count so all samples fit the measurement budget.
        let budget = self.measurement.as_secs_f64().max(1e-3);
        let total_iters = (budget / per_iter.max(1e-9)) as u64;
        let iters_per_sample = (total_iters / self.sample_size as u64).max(1);

        self.samples_ns.clear();
        for _ in 0..self.sample_size {
            let start = Instant::now();
            for _ in 0..iters_per_sample {
                black_box(routine());
            }
            let elapsed = start.elapsed().as_nanos() as f64;
            self.samples_ns.push(elapsed / iters_per_sample as f64);
        }
    }

    fn report(&self, id: &str) {
        if self.samples_ns.is_empty() {
            println!("{id:<60} (no samples)");
            return;
        }
        let mut sorted = self.samples_ns.clone();
        sorted.sort_by(|a, b| a.total_cmp(b));
        let min = sorted[0];
        let median = sorted[sorted.len() / 2];
        let mean = sorted.iter().sum::<f64>() / sorted.len() as f64;
        println!(
            "{id:<60} min {:>12} median {:>12} mean {:>12}",
            format_ns(min),
            format_ns(median),
            format_ns(mean)
        );
    }
}

fn format_ns(ns: f64) -> String {
    if ns < 1_000.0 {
        format!("{ns:.1} ns")
    } else if ns < 1_000_000.0 {
        format!("{:.2} µs", ns / 1_000.0)
    } else if ns < 1_000_000_000.0 {
        format!("{:.2} ms", ns / 1_000_000.0)
    } else {
        format!("{:.3} s", ns / 1_000_000_000.0)
    }
}

/// Shared knobs for a group (or a bare `Criterion::bench_function`).
#[derive(Debug, Clone, Copy)]
struct Settings {
    sample_size: usize,
    warm_up: Duration,
    measurement: Duration,
}

impl Default for Settings {
    fn default() -> Self {
        Self {
            sample_size: 10,
            warm_up: Duration::from_millis(200),
            measurement: Duration::from_millis(500),
        }
    }
}

/// Entry point mirroring `criterion::Criterion`.
#[derive(Debug, Default)]
pub struct Criterion {
    settings: Settings,
}

impl Criterion {
    /// Starts a named benchmark group.
    pub fn benchmark_group(&mut self, group_name: impl Into<String>) -> BenchmarkGroup<'_> {
        let settings = self.settings;
        BenchmarkGroup {
            _criterion: self,
            name: group_name.into(),
            settings,
        }
    }

    /// Benchmarks `routine` outside any group.
    pub fn bench_function(
        &mut self,
        id: impl IntoBenchmarkId,
        routine: impl FnMut(&mut Bencher),
    ) -> &mut Self {
        run_one(&id.into_benchmark_id().id, self.settings, routine);
        self
    }
}

fn run_one(id: &str, settings: Settings, mut routine: impl FnMut(&mut Bencher)) {
    let mut bencher = Bencher {
        warm_up: settings.warm_up,
        measurement: settings.measurement,
        sample_size: settings.sample_size,
        samples_ns: Vec::new(),
    };
    routine(&mut bencher);
    bencher.report(id);
}

/// A named collection of related benchmarks sharing settings.
pub struct BenchmarkGroup<'a> {
    _criterion: &'a mut Criterion,
    name: String,
    settings: Settings,
}

impl BenchmarkGroup<'_> {
    /// Sets the number of timed samples per benchmark.
    pub fn sample_size(&mut self, n: usize) -> &mut Self {
        self.settings.sample_size = n.max(1);
        self
    }

    /// Sets the warm-up duration per benchmark.
    pub fn warm_up_time(&mut self, duration: Duration) -> &mut Self {
        self.settings.warm_up = duration;
        self
    }

    /// Sets the measurement budget per benchmark.
    pub fn measurement_time(&mut self, duration: Duration) -> &mut Self {
        self.settings.measurement = duration;
        self
    }

    /// Benchmarks `routine` under this group.
    pub fn bench_function(
        &mut self,
        id: impl IntoBenchmarkId,
        routine: impl FnMut(&mut Bencher),
    ) -> &mut Self {
        let full = format!("{}/{}", self.name, id.into_benchmark_id().id);
        run_one(&full, self.settings, routine);
        self
    }

    /// Benchmarks `routine` with an input value passed by reference.
    pub fn bench_with_input<I>(
        &mut self,
        id: impl IntoBenchmarkId,
        input: &I,
        mut routine: impl FnMut(&mut Bencher, &I),
    ) -> &mut Self {
        let full = format!("{}/{}", self.name, id.into_benchmark_id().id);
        run_one(&full, self.settings, |b| routine(b, input));
        self
    }

    /// Ends the group (all reporting is immediate, so this is a marker).
    pub fn finish(self) {}
}

/// Declares a benchmark group function, mirroring `criterion::criterion_group!`.
#[macro_export]
macro_rules! criterion_group {
    ($group:ident, $($target:path),+ $(,)?) => {
        pub fn $group() {
            let mut criterion = $crate::Criterion::default();
            $( $target(&mut criterion); )+
        }
    };
}

/// Declares the bench `main` function, mirroring `criterion::criterion_main!`.
#[macro_export]
macro_rules! criterion_main {
    ($($group:path),+ $(,)?) => {
        fn main() {
            $( $group(); )+
        }
    };
}

#[cfg(test)]
mod tests {
    use super::*;

    fn sample_bench(c: &mut Criterion) {
        let mut group = c.benchmark_group("smoke");
        group.sample_size(3);
        group.warm_up_time(Duration::from_millis(1));
        group.measurement_time(Duration::from_millis(5));
        group.bench_with_input(BenchmarkId::new("sum", 100), &100u64, |b, &n| {
            b.iter(|| (0..n).sum::<u64>())
        });
        group.bench_function("trivial", |b| b.iter(|| black_box(1 + 1)));
        group.finish();
    }

    criterion_group!(smoke_group, sample_bench);

    #[test]
    fn group_runs_and_reports() {
        smoke_group();
    }

    #[test]
    fn ids_format_like_criterion() {
        assert_eq!(BenchmarkId::new("sweep", 0.5).id, "sweep/0.5");
        assert_eq!(BenchmarkId::from_parameter(42).id, "42");
    }

    #[test]
    fn bare_bench_function_runs() {
        let mut criterion = Criterion {
            settings: Settings {
                sample_size: 2,
                warm_up: Duration::from_millis(1),
                measurement: Duration::from_millis(2),
            },
        };
        criterion.bench_function("bare", |b| b.iter(|| black_box(2 * 2)));
    }
}

//! In-memory series store.

use crate::error::{Result, StorageError};
use crate::store::SeriesStore;
use ts_core::normalize::znormalize;
use ts_core::TimeSeries;

/// A series held entirely in memory.
///
/// This is the store used by unit tests, the examples, and the benchmark
/// harness when the caller wants to exclude disk latency from a measurement.
#[derive(Debug, Clone, PartialEq)]
pub struct InMemorySeries {
    values: Vec<f64>,
}

impl InMemorySeries {
    /// Creates a store from raw values, rejecting empty or non-finite input.
    ///
    /// # Errors
    ///
    /// Returns a wrapped [`ts_core::TsError`] on invalid input.
    pub fn new(values: Vec<f64>) -> Result<Self> {
        // Reuse the TimeSeries validation, then take the values back.
        let series = TimeSeries::new(values).map_err(StorageError::Core)?;
        Ok(Self {
            values: series.into_values(),
        })
    }

    /// Creates a store whose values are the **whole-series z-normalised**
    /// version of `values` (the paper's default regime).
    ///
    /// # Errors
    ///
    /// Returns a wrapped [`ts_core::TsError`] on invalid input.
    pub fn new_znormalized(values: &[f64]) -> Result<Self> {
        let series = TimeSeries::new(values.to_vec()).map_err(StorageError::Core)?;
        Ok(Self {
            values: znormalize(series.values()),
        })
    }

    /// Creates a store from a [`TimeSeries`].
    #[must_use]
    pub fn from_series(series: TimeSeries) -> Self {
        Self {
            values: series.into_values(),
        }
    }

    /// The stored values.
    #[must_use]
    pub fn values(&self) -> &[f64] {
        &self.values
    }

    /// Converts back into a [`TimeSeries`].
    #[must_use]
    pub fn into_series(self) -> TimeSeries {
        TimeSeries::from_unchecked(self.values)
    }

    /// Approximate heap memory used by the stored values, in bytes.
    #[must_use]
    pub fn memory_bytes(&self) -> usize {
        self.values.capacity() * std::mem::size_of::<f64>()
    }

    /// Appends pre-validated values (used by the [`crate::AppendableStore`]
    /// impl, which has already rejected non-finite input).
    pub(crate) fn extend_unchecked(&mut self, values: &[f64]) {
        self.values.extend_from_slice(values);
    }
}

impl SeriesStore for InMemorySeries {
    fn len(&self) -> usize {
        self.values.len()
    }

    fn read_into(&self, start: usize, buf: &mut [f64]) -> Result<()> {
        let end = start
            .checked_add(buf.len())
            .filter(|&e| e <= self.values.len())
            .ok_or(StorageError::OutOfBounds {
                start,
                len: buf.len(),
                series_len: self.values.len(),
            })?;
        buf.copy_from_slice(&self.values[start..end]);
        Ok(())
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn construction_and_reads() {
        let s = InMemorySeries::new(vec![1.0, 2.0, 3.0, 4.0]).unwrap();
        assert_eq!(s.len(), 4);
        assert_eq!(s.values(), &[1.0, 2.0, 3.0, 4.0]);
        let mut buf = [0.0; 2];
        s.read_into(1, &mut buf).unwrap();
        assert_eq!(buf, [2.0, 3.0]);
        assert_eq!(s.read(0, 4).unwrap(), vec![1.0, 2.0, 3.0, 4.0]);
    }

    #[test]
    fn rejects_invalid_input() {
        assert!(InMemorySeries::new(vec![]).is_err());
        assert!(InMemorySeries::new(vec![f64::NAN]).is_err());
        assert!(InMemorySeries::new_znormalized(&[]).is_err());
    }

    #[test]
    fn out_of_bounds_read() {
        let s = InMemorySeries::new(vec![1.0, 2.0]).unwrap();
        let mut buf = [0.0; 3];
        assert!(matches!(
            s.read_into(0, &mut buf),
            Err(StorageError::OutOfBounds { .. })
        ));
        assert!(matches!(
            s.read_into(usize::MAX, &mut [0.0]),
            Err(StorageError::OutOfBounds { .. })
        ));
    }

    #[test]
    fn znormalized_construction() {
        let s = InMemorySeries::new_znormalized(&[10.0, 20.0, 30.0]).unwrap();
        let m: f64 = s.values().iter().sum::<f64>() / 3.0;
        assert!(m.abs() < 1e-12);
        assert!(s.values()[0] < 0.0 && s.values()[2] > 0.0);
    }

    #[test]
    fn series_round_trip_and_memory() {
        let ts = TimeSeries::new(vec![5.0, 6.0]).unwrap();
        let s = InMemorySeries::from_series(ts.clone());
        assert!(s.memory_bytes() >= 16);
        assert_eq!(s.into_series(), ts);
    }
}

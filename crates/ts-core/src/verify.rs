//! Candidate verification with *reordering early abandoning* (§3.2).
//!
//! Verification checks whether a candidate subsequence really is a twin of the
//! query.  A plain left-to-right scan abandons at the first timestamp whose
//! difference exceeds `ε`; the UCR-suite style optimisation re-orders the
//! comparison so that the query positions with the largest absolute
//! (z-normalised) values — the ones least likely to match — are checked first.

/// A reusable verification plan for a fixed query: the query values plus the
/// index order in which candidate positions are compared.
#[derive(Debug, Clone)]
pub struct Verifier {
    query: Vec<f64>,
    /// Positions of the query sorted by decreasing `|q_i|`.
    order: Vec<u32>,
}

impl Verifier {
    /// Builds a verifier for `query` using reordering early abandoning: the
    /// positions with the largest absolute query values are compared first.
    #[must_use]
    pub fn new(query: &[f64]) -> Self {
        let mut order: Vec<u32> = (0..query.len() as u32).collect();
        order.sort_by(|&a, &b| {
            let va = query[a as usize].abs();
            let vb = query[b as usize].abs();
            vb.partial_cmp(&va).unwrap_or(std::cmp::Ordering::Equal)
        });
        Self {
            query: query.to_vec(),
            order,
        }
    }

    /// Builds a verifier that compares positions left-to-right (no
    /// reordering).  Used by the ablation bench that measures the value of
    /// reordering.
    #[must_use]
    pub fn new_sequential(query: &[f64]) -> Self {
        Self {
            query: query.to_vec(),
            order: (0..query.len() as u32).collect(),
        }
    }

    /// The query this verifier was built for.
    #[must_use]
    pub fn query(&self) -> &[f64] {
        &self.query
    }

    /// Query length.
    #[must_use]
    pub fn len(&self) -> usize {
        self.query.len()
    }

    /// Returns `true` if the query is empty.
    #[must_use]
    pub fn is_empty(&self) -> bool {
        self.query.is_empty()
    }

    /// The comparison order (indices into the query).
    #[must_use]
    pub fn order(&self) -> &[u32] {
        &self.order
    }

    /// Returns `true` iff `candidate` is a twin of the query w.r.t.
    /// `epsilon`, visiting positions in the precomputed order and abandoning
    /// at the first violation.
    ///
    /// Panics in debug builds if the candidate length differs from the query.
    #[must_use]
    pub fn is_twin(&self, candidate: &[f64], epsilon: f64) -> bool {
        debug_assert_eq!(candidate.len(), self.query.len());
        for &i in &self.order {
            let i = i as usize;
            if (self.query[i] - candidate[i]).abs() > epsilon {
                return false;
            }
        }
        true
    }

    /// Like [`Self::is_twin`] but also reports how many positions were
    /// examined before accepting/abandoning — used by query statistics and the
    /// verification-cost ablation.
    #[must_use]
    pub fn is_twin_counted(&self, candidate: &[f64], epsilon: f64) -> (bool, usize) {
        debug_assert_eq!(candidate.len(), self.query.len());
        for (checked, &i) in self.order.iter().enumerate() {
            let i = i as usize;
            if (self.query[i] - candidate[i]).abs() > epsilon {
                return (false, checked + 1);
            }
        }
        (true, self.order.len())
    }

    /// The exact Chebyshev distance between the query and `candidate`
    /// (no abandoning); useful for top-k extensions and tests.
    #[must_use]
    pub fn chebyshev(&self, candidate: &[f64]) -> f64 {
        debug_assert_eq!(candidate.len(), self.query.len());
        self.query
            .iter()
            .zip(candidate)
            .map(|(q, c)| (q - c).abs())
            .fold(0.0_f64, f64::max)
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn order_sorts_by_absolute_value() {
        let v = Verifier::new(&[0.1, -3.0, 2.0, 0.0]);
        assert_eq!(v.order(), &[1, 2, 0, 3]);
        assert_eq!(v.len(), 4);
        assert!(!v.is_empty());
        assert_eq!(v.query(), &[0.1, -3.0, 2.0, 0.0]);
    }

    #[test]
    fn sequential_order_is_identity() {
        let v = Verifier::new_sequential(&[5.0, 1.0, 3.0]);
        assert_eq!(v.order(), &[0, 1, 2]);
    }

    #[test]
    fn is_twin_agrees_with_direct_chebyshev() {
        let q = [0.5, -1.0, 2.0, 0.0, 1.5];
        let v = Verifier::new(&q);
        let close: Vec<f64> = q.iter().map(|x| x + 0.2).collect();
        let far: Vec<f64> = q
            .iter()
            .enumerate()
            .map(|(i, x)| x + if i == 3 { 1.0 } else { 0.0 })
            .collect();
        assert!(v.is_twin(&close, 0.25));
        assert!(!v.is_twin(&close, 0.1));
        assert!(!v.is_twin(&far, 0.5));
        assert!(v.is_twin(&far, 1.0));
        assert!((v.chebyshev(&close) - 0.2).abs() < 1e-12);
        assert_eq!(v.chebyshev(&far), 1.0);
    }

    #[test]
    fn counted_abandons_early_on_reordered_mismatch() {
        // Query has a big spike at position 2; candidate differs only there.
        let q = [0.0, 0.0, 10.0, 0.0, 0.0];
        let v = Verifier::new(&q);
        let mut c = q.to_vec();
        c[2] = 0.0;
        let (ok, checked) = v.is_twin_counted(&c, 1.0);
        assert!(!ok);
        assert_eq!(checked, 1, "the spike position must be checked first");

        let seq = Verifier::new_sequential(&q);
        let (ok2, checked2) = seq.is_twin_counted(&c, 1.0);
        assert!(!ok2);
        assert_eq!(checked2, 3, "sequential order reaches the spike third");
    }

    #[test]
    fn counted_full_scan_on_accept() {
        let q = [1.0, 2.0, 3.0];
        let v = Verifier::new(&q);
        let (ok, checked) = v.is_twin_counted(&[1.1, 2.1, 2.9], 0.2);
        assert!(ok);
        assert_eq!(checked, 3);
    }

    #[test]
    fn reordering_and_sequential_agree_on_result() {
        let q: Vec<f64> = (0..50).map(|i| ((i * 13) % 7) as f64 - 3.0).collect();
        let reordered = Verifier::new(&q);
        let sequential = Verifier::new_sequential(&q);
        for shift in [0.0, 0.4, 0.9, 1.7] {
            let cand: Vec<f64> = q
                .iter()
                .enumerate()
                .map(|(i, x)| x + shift * if i % 2 == 0 { 1.0 } else { -1.0 })
                .collect();
            for eps in [0.1, 0.5, 1.0, 2.0] {
                assert_eq!(
                    reordered.is_twin(&cand, eps),
                    sequential.is_twin(&cand, eps),
                    "orders must agree for eps={eps} shift={shift}"
                );
            }
        }
    }
}

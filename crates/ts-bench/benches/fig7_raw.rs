//! Criterion bench for Figure 7: query time vs ε on raw (non-normalised)
//! values, all four methods.

use criterion::{criterion_group, criterion_main, BenchmarkId, Criterion};
use std::hint::black_box;

use ts_bench::{build_engines, generate, HarnessOptions};
use twin_search::{Dataset, Method, Normalization, QueryWorkload};

fn bench_fig7(c: &mut Criterion) {
    let options = HarnessOptions {
        scale: 32,
        queries: 5,
        kernel: None,
    };
    let normalization = Normalization::None;
    let len = 100;
    // One dataset keeps the sweep short; the binary covers both.
    let dataset = Dataset::Eeg;
    let series = generate(dataset, &options);
    let engines = build_engines(&series, &Method::ALL, len, normalization);
    let workload =
        QueryWorkload::sample(engines[0].store(), len, options.queries, 7, normalization)
            .expect("valid workload");

    let mut group = c.benchmark_group(format!("fig7_raw/{}", dataset.name()));
    group.sample_size(10);
    group.warm_up_time(std::time::Duration::from_millis(500));
    group.measurement_time(std::time::Duration::from_secs(2));
    // Raw-value thresholds of Table 1 are calibrated to the real data's value
    // range; use thresholds proportional to the synthetic data's spread so
    // the bench exercises both selective and permissive queries.
    for &epsilon in &[0.5_f64, 2.0, 5.0] {
        for engine in &engines {
            group.bench_with_input(
                BenchmarkId::new(engine.method().name(), epsilon),
                &epsilon,
                |b, &eps| {
                    b.iter(|| {
                        let mut total = 0usize;
                        for query in workload.iter() {
                            total += engine.count(black_box(query), eps).unwrap();
                        }
                        black_box(total)
                    });
                },
            );
        }
    }
    group.finish();
}

criterion_group!(benches, bench_fig7);
criterion_main!(benches);

//! Structural diagnostics for a built TS-Index.
//!
//! These reports are not needed to answer queries; they exist to make the
//! index inspectable — how full the leaves are, how tight the envelopes are
//! per level, how balanced the tree is — and they back the node-capacity
//! ablation discussed in `DESIGN.md`.

use crate::index::TsIndex;
use crate::node::NodeKind;

/// Summary statistics of a set of observations.
#[derive(Debug, Clone, Copy, Default, PartialEq)]
pub struct Summary {
    /// Number of observations.
    pub count: usize,
    /// Minimum value.
    pub min: f64,
    /// Maximum value.
    pub max: f64,
    /// Arithmetic mean.
    pub mean: f64,
}

impl Summary {
    fn from_values(values: &[f64]) -> Self {
        if values.is_empty() {
            return Self::default();
        }
        let (mut lo, mut hi, mut sum) = (f64::INFINITY, f64::NEG_INFINITY, 0.0_f64);
        for &v in values {
            lo = lo.min(v);
            hi = hi.max(v);
            sum += v;
        }
        Self {
            count: values.len(),
            min: lo,
            max: hi,
            mean: sum / values.len() as f64,
        }
    }
}

/// A per-level and per-leaf report of the tree structure.
#[derive(Debug, Clone, PartialEq)]
pub struct TreeDiagnostics {
    /// Number of nodes at each level (level 0 = root).
    pub nodes_per_level: Vec<usize>,
    /// Occupancy (entries per node) across all leaves.
    pub leaf_occupancy: Summary,
    /// Occupancy (children per node) across all internal nodes.
    pub internal_occupancy: Summary,
    /// Envelope area (`Σ_i upper_i − lower_i`) across all leaves; a proxy for
    /// how tight the leaf-level MBTS are and therefore how well Lemma 1 can
    /// prune.
    pub leaf_envelope_area: Summary,
    /// Fraction of leaves filled to at least the configured minimum capacity.
    pub leaves_at_or_above_min: f64,
}

impl TsIndex {
    /// Computes structural diagnostics for the built tree.
    #[must_use]
    pub fn diagnostics(&self) -> TreeDiagnostics {
        let mut nodes_per_level: Vec<usize> = Vec::new();
        let mut leaf_fill = Vec::new();
        let mut internal_fill = Vec::new();
        let mut leaf_area = Vec::new();
        let mut leaves_at_min = 0usize;

        if let Some(root) = self.root {
            let mut stack = vec![(root, 0usize)];
            while let Some((id, level)) = stack.pop() {
                if nodes_per_level.len() <= level {
                    nodes_per_level.resize(level + 1, 0);
                }
                nodes_per_level[level] += 1;
                let node = &self.nodes[id];
                match &node.kind {
                    NodeKind::Leaf { positions } => {
                        leaf_fill.push(positions.len() as f64);
                        leaf_area.push(node.mbts.area());
                        if positions.len() >= self.config.min_capacity {
                            leaves_at_min += 1;
                        }
                    }
                    NodeKind::Internal { children } => {
                        internal_fill.push(children.len() as f64);
                        stack.extend(children.iter().map(|&c| (c, level + 1)));
                    }
                }
            }
        }

        let leaves = leaf_fill.len().max(1);
        TreeDiagnostics {
            nodes_per_level,
            leaf_occupancy: Summary::from_values(&leaf_fill),
            internal_occupancy: Summary::from_values(&internal_fill),
            leaf_envelope_area: Summary::from_values(&leaf_area),
            leaves_at_or_above_min: leaves_at_min as f64 / leaves as f64,
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::config::TsIndexConfig;
    use ts_data::generators::{insect_like, GeneratorConfig};
    use ts_storage::InMemorySeries;

    fn build(n: usize, min: usize, max: usize) -> (InMemorySeries, TsIndex) {
        let store =
            InMemorySeries::new_znormalized(&insect_like(GeneratorConfig::new(n, 77))).unwrap();
        let config = TsIndexConfig::new(50)
            .unwrap()
            .with_capacities(min, max)
            .unwrap();
        let index = TsIndex::build(&store, config).unwrap();
        (store, index)
    }

    #[test]
    fn diagnostics_are_consistent_with_stats() {
        let (_, index) = build(3_000, 4, 10);
        let d = index.diagnostics();
        let s = index.stats();
        assert_eq!(d.nodes_per_level.iter().sum::<usize>(), s.nodes);
        assert_eq!(d.nodes_per_level.len(), s.height);
        assert_eq!(d.leaf_occupancy.count, s.leaves);
        assert_eq!(d.internal_occupancy.count, s.internal);
        // Total entries across leaves equals the number of indexed positions.
        let total = d.leaf_occupancy.mean * d.leaf_occupancy.count as f64;
        assert!((total - s.entries as f64).abs() < 1e-6);
    }

    #[test]
    fn occupancy_respects_capacity_bounds() {
        let (_, index) = build(5_000, 4, 10);
        let d = index.diagnostics();
        assert!(d.leaf_occupancy.max <= 10.0);
        assert!(d.internal_occupancy.max <= 10.0);
        // Non-root nodes must be at least at the minimum; the root may be
        // smaller, so check the fraction instead of the minimum.
        assert!(d.leaves_at_or_above_min > 0.9);
        assert!(d.leaf_envelope_area.min >= 0.0);
        assert!(d.leaf_envelope_area.mean > 0.0);
    }

    #[test]
    fn single_leaf_tree_diagnostics() {
        let store =
            InMemorySeries::new_znormalized(&insect_like(GeneratorConfig::new(60, 1))).unwrap();
        let index = TsIndex::build(&store, TsIndexConfig::new(50).unwrap()).unwrap();
        let d = index.diagnostics();
        assert_eq!(d.nodes_per_level, vec![1]);
        assert_eq!(d.leaf_occupancy.count, 1);
        assert_eq!(d.internal_occupancy.count, 0);
        assert_eq!(d.internal_occupancy, Summary::default());
    }

    #[test]
    fn smaller_capacity_gives_tighter_leaf_envelopes() {
        let (_, small_nodes) = build(4_000, 2, 6);
        let (_, large_nodes) = build(4_000, 25, 60);
        let small_d = small_nodes.diagnostics();
        let large_d = large_nodes.diagnostics();
        assert!(
            small_d.leaf_envelope_area.mean < large_d.leaf_envelope_area.mean,
            "smaller nodes should have tighter envelopes ({} vs {})",
            small_d.leaf_envelope_area.mean,
            large_d.leaf_envelope_area.mean
        );
    }
}

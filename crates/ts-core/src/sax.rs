//! Symbolic Aggregate approXimation (SAX) and iSAX symbols.
//!
//! A SAX *word* is obtained by quantising each PAA segment mean into one of
//! `a` symbols using breakpoints chosen so that, for z-normalised data, each
//! symbol is equiprobable under a standard normal distribution (Lin et al.,
//! 2007).  The iSAX index (§4.2) refines symbols with variable cardinality:
//! an [`IsaxSymbol`] stores a symbol value together with the number of bits
//! (so cardinality `2^bits`) at which it is expressed.
//!
//! For non-normalised data the paper notes that breakpoints "can be adjusted
//! accordingly"; [`Breakpoints::uniform`] provides equi-width breakpoints over
//! an observed value range for that purpose.

use crate::error::{Result, TsError};
use crate::paa::paa;

/// Maximum number of bits supported for an iSAX symbol (cardinality 256).
pub const MAX_SYMBOL_BITS: u8 = 8;

/// Inverse CDF (quantile function) of the standard normal distribution,
/// using Acklam's rational approximation (relative error < 1.15e-9).
///
/// Exposed because the data generators also use it to shape synthetic noise.
#[must_use]
pub fn normal_quantile(p: f64) -> f64 {
    debug_assert!(p > 0.0 && p < 1.0, "quantile requires 0 < p < 1");
    // Coefficients for Acklam's approximation.
    const A: [f64; 6] = [
        -3.969_683_028_665_376e1,
        2.209_460_984_245_205e2,
        -2.759_285_104_469_687e2,
        1.383_577_518_672_69e2,
        -3.066_479_806_614_716e1,
        2.506_628_277_459_239,
    ];
    const B: [f64; 5] = [
        -5.447_609_879_822_406e1,
        1.615_858_368_580_409e2,
        -1.556_989_798_598_866e2,
        6.680_131_188_771_972e1,
        -1.328_068_155_288_572e1,
    ];
    const C: [f64; 6] = [
        -7.784_894_002_430_293e-3,
        -3.223_964_580_411_365e-1,
        -2.400_758_277_161_838,
        -2.549_732_539_343_734,
        4.374_664_141_464_968,
        2.938_163_982_698_783,
    ];
    const D: [f64; 4] = [
        7.784_695_709_041_462e-3,
        3.224_671_290_700_398e-1,
        2.445_134_137_142_996,
        3.754_408_661_907_416,
    ];
    const P_LOW: f64 = 0.02425;
    const P_HIGH: f64 = 1.0 - P_LOW;

    if p < P_LOW {
        let q = (-2.0 * p.ln()).sqrt();
        (((((C[0] * q + C[1]) * q + C[2]) * q + C[3]) * q + C[4]) * q + C[5])
            / ((((D[0] * q + D[1]) * q + D[2]) * q + D[3]) * q + 1.0)
    } else if p <= P_HIGH {
        let q = p - 0.5;
        let r = q * q;
        (((((A[0] * r + A[1]) * r + A[2]) * r + A[3]) * r + A[4]) * r + A[5]) * q
            / (((((B[0] * r + B[1]) * r + B[2]) * r + B[3]) * r + B[4]) * r + 1.0)
    } else {
        let q = (-2.0 * (1.0 - p).ln()).sqrt();
        -(((((C[0] * q + C[1]) * q + C[2]) * q + C[3]) * q + C[4]) * q + C[5])
            / ((((D[0] * q + D[1]) * q + D[2]) * q + D[3]) * q + 1.0)
    }
}

/// A set of `a - 1` increasing breakpoints dividing the real line into `a`
/// symbol regions, plus the value range each symbol covers.
#[derive(Debug, Clone, PartialEq)]
pub struct Breakpoints {
    /// The `alphabet_size - 1` interior breakpoints, strictly increasing.
    cuts: Vec<f64>,
}

impl Breakpoints {
    /// Gaussian (equiprobable) breakpoints for an alphabet of `alphabet_size`
    /// symbols, the standard choice for z-normalised series.
    ///
    /// # Errors
    ///
    /// Returns an error if `alphabet_size < 2`.
    pub fn gaussian(alphabet_size: usize) -> Result<Self> {
        if alphabet_size < 2 {
            return Err(TsError::InvalidParameter(
                "SAX alphabet size must be at least 2".into(),
            ));
        }
        let cuts = (1..alphabet_size)
            .map(|i| normal_quantile(i as f64 / alphabet_size as f64))
            .collect();
        Ok(Self { cuts })
    }

    /// Equi-width breakpoints over `[lo, hi]`, for indexing raw
    /// (non-normalised) values.
    ///
    /// # Errors
    ///
    /// Returns an error if `alphabet_size < 2` or `lo >= hi`.
    pub fn uniform(alphabet_size: usize, lo: f64, hi: f64) -> Result<Self> {
        if alphabet_size < 2 {
            return Err(TsError::InvalidParameter(
                "SAX alphabet size must be at least 2".into(),
            ));
        }
        if lo >= hi {
            return Err(TsError::InvalidParameter(format!(
                "uniform breakpoints require lo < hi, got [{lo}, {hi}]"
            )));
        }
        let width = (hi - lo) / alphabet_size as f64;
        let cuts = (1..alphabet_size).map(|i| lo + i as f64 * width).collect();
        Ok(Self { cuts })
    }

    /// Builds breakpoints from explicit cut points.
    ///
    /// # Errors
    ///
    /// Returns an error if the cuts are empty or not strictly increasing.
    pub fn from_cuts(cuts: Vec<f64>) -> Result<Self> {
        if cuts.is_empty() {
            return Err(TsError::InvalidParameter(
                "at least one breakpoint is required".into(),
            ));
        }
        if cuts.windows(2).any(|w| w[0] >= w[1]) {
            return Err(TsError::InvalidParameter(
                "breakpoints must be strictly increasing".into(),
            ));
        }
        Ok(Self { cuts })
    }

    /// The alphabet size `a` (number of symbols).
    #[must_use]
    pub fn alphabet_size(&self) -> usize {
        self.cuts.len() + 1
    }

    /// The interior cut points.
    #[must_use]
    pub fn cuts(&self) -> &[f64] {
        &self.cuts
    }

    /// Maps a (segment-mean) value to its symbol in `0..alphabet_size`.
    /// Symbol `s` covers the half-open interval `[cuts[s-1], cuts[s])`, with
    /// symbol 0 extending to −∞ and the last symbol to +∞.
    #[must_use]
    pub fn symbol_for(&self, value: f64) -> u8 {
        // partition_point returns the count of cuts <= value, i.e. the symbol.
        self.cuts.partition_point(|&c| c <= value) as u8
    }

    /// The `[lower, upper]` value range covered by `symbol`, where the ends
    /// may be ±∞.
    #[must_use]
    pub fn symbol_range(&self, symbol: u8) -> (f64, f64) {
        let s = symbol as usize;
        let lo = if s == 0 {
            f64::NEG_INFINITY
        } else {
            self.cuts[s - 1]
        };
        let hi = if s >= self.cuts.len() {
            f64::INFINITY
        } else {
            self.cuts[s]
        };
        (lo, hi)
    }
}

/// A fixed-cardinality SAX word: one symbol per PAA segment.
#[derive(Debug, Clone, PartialEq, Eq, Hash)]
pub struct SaxWord {
    symbols: Vec<u8>,
}

impl SaxWord {
    /// Builds the SAX word of `values` using `segments` PAA segments and the
    /// given breakpoints.
    ///
    /// # Errors
    ///
    /// Propagates PAA parameter errors.
    pub fn from_values(values: &[f64], segments: usize, breakpoints: &Breakpoints) -> Result<Self> {
        let means = paa(values, segments)?;
        Ok(Self::from_paa(&means, breakpoints))
    }

    /// Builds the SAX word from precomputed PAA means.
    #[must_use]
    pub fn from_paa(means: &[f64], breakpoints: &Breakpoints) -> Self {
        Self {
            symbols: means.iter().map(|&m| breakpoints.symbol_for(m)).collect(),
        }
    }

    /// The per-segment symbols.
    #[must_use]
    pub fn symbols(&self) -> &[u8] {
        &self.symbols
    }

    /// Number of segments (the word length `m`).
    #[must_use]
    pub fn len(&self) -> usize {
        self.symbols.len()
    }

    /// Returns `true` if the word has no segments.
    #[must_use]
    pub fn is_empty(&self) -> bool {
        self.symbols.is_empty()
    }
}

/// An iSAX symbol: a symbol value expressed at a cardinality of `2^bits`.
///
/// iSAX compares symbols of different cardinalities by aligning their most
/// significant bits: refining a node's symbol appends one bit, splitting its
/// value range in half.
#[derive(Debug, Clone, Copy, PartialEq, Eq, Hash)]
pub struct IsaxSymbol {
    /// Symbol value in `0 .. 2^bits`.
    pub value: u8,
    /// Number of bits of resolution (1..=[`MAX_SYMBOL_BITS`]).
    pub bits: u8,
}

impl IsaxSymbol {
    /// Creates a symbol, clamping `bits` into `1..=MAX_SYMBOL_BITS`.
    #[must_use]
    pub fn new(value: u8, bits: u8) -> Self {
        let bits = bits.clamp(1, MAX_SYMBOL_BITS);
        Self { value, bits }
    }

    /// Cardinality `2^bits` of this symbol.
    #[must_use]
    pub fn cardinality(&self) -> usize {
        1usize << self.bits
    }

    /// Derives this symbol from a full-resolution symbol (at
    /// [`MAX_SYMBOL_BITS`] bits) by keeping only the top `bits` bits.
    #[must_use]
    pub fn from_full_resolution(full: u8, bits: u8) -> Self {
        let bits = bits.clamp(1, MAX_SYMBOL_BITS);
        Self {
            value: full >> (MAX_SYMBOL_BITS - bits),
            bits,
        }
    }

    /// Refines the symbol by one bit, taking the next bit from the
    /// full-resolution symbol `full`.  Returns `None` when already at maximum
    /// resolution.
    #[must_use]
    pub fn refine(&self, full: u8) -> Option<Self> {
        if self.bits >= MAX_SYMBOL_BITS {
            return None;
        }
        let bits = self.bits + 1;
        Some(Self {
            value: full >> (MAX_SYMBOL_BITS - bits),
            bits,
        })
    }

    /// Returns `true` if `full` (a full-resolution symbol) falls under this
    /// symbol's prefix.
    #[must_use]
    pub fn contains_full(&self, full: u8) -> bool {
        (full >> (MAX_SYMBOL_BITS - self.bits)) == self.value
    }

    /// The `[lower, upper]` mean-value range this symbol covers under
    /// `breakpoints_full`, the breakpoints at full resolution
    /// (`2^MAX_SYMBOL_BITS` symbols).  Ends may be ±∞.
    #[must_use]
    pub fn value_range(&self, breakpoints_full: &Breakpoints) -> (f64, f64) {
        debug_assert_eq!(
            breakpoints_full.alphabet_size(),
            1usize << MAX_SYMBOL_BITS,
            "full-resolution breakpoints required"
        );
        let shift = MAX_SYMBOL_BITS - self.bits;
        let first_full = (self.value as usize) << shift;
        let last_full = first_full + (1usize << shift) - 1;
        let (lo, _) = breakpoints_full.symbol_range(first_full as u8);
        let (_, hi) = breakpoints_full.symbol_range(last_full as u8);
        (lo, hi)
    }
}

/// An iSAX word: one [`IsaxSymbol`] per segment, possibly at mixed
/// cardinalities (as stored in iSAX internal nodes).
#[derive(Debug, Clone, PartialEq, Eq, Hash)]
pub struct IsaxWord {
    symbols: Vec<IsaxSymbol>,
}

impl IsaxWord {
    /// Builds a word from symbols.
    #[must_use]
    pub fn new(symbols: Vec<IsaxSymbol>) -> Self {
        Self { symbols }
    }

    /// Builds the word at a uniform `bits` resolution from full-resolution
    /// symbols.
    #[must_use]
    pub fn from_full_resolution(full: &[u8], bits: u8) -> Self {
        Self {
            symbols: full
                .iter()
                .map(|&f| IsaxSymbol::from_full_resolution(f, bits))
                .collect(),
        }
    }

    /// The per-segment symbols.
    #[must_use]
    pub fn symbols(&self) -> &[IsaxSymbol] {
        &self.symbols
    }

    /// Word length (number of segments).
    #[must_use]
    pub fn len(&self) -> usize {
        self.symbols.len()
    }

    /// Returns `true` if the word has no segments.
    #[must_use]
    pub fn is_empty(&self) -> bool {
        self.symbols.is_empty()
    }

    /// Returns `true` if a full-resolution SAX word falls under this word's
    /// per-segment prefixes.
    #[must_use]
    pub fn contains_full(&self, full: &[u8]) -> bool {
        self.symbols.len() == full.len()
            && self
                .symbols
                .iter()
                .zip(full)
                .all(|(s, &f)| s.contains_full(f))
    }
}

/// Computes the full-resolution (`2^MAX_SYMBOL_BITS`-ary) SAX symbols of a
/// sequence: the input to every iSAX word derivation.
///
/// # Errors
///
/// Propagates PAA errors; `breakpoints_full` must have alphabet size 256.
pub fn full_resolution_symbols(
    values: &[f64],
    segments: usize,
    breakpoints_full: &Breakpoints,
) -> Result<Vec<u8>> {
    if breakpoints_full.alphabet_size() != 1usize << MAX_SYMBOL_BITS {
        return Err(TsError::InvalidParameter(format!(
            "full-resolution breakpoints must have {} symbols, got {}",
            1usize << MAX_SYMBOL_BITS,
            breakpoints_full.alphabet_size()
        )));
    }
    let means = paa(values, segments)?;
    Ok(means
        .iter()
        .map(|&m| breakpoints_full.symbol_for(m))
        .collect())
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn normal_quantile_symmetry_and_known_values() {
        assert!((normal_quantile(0.5)).abs() < 1e-9);
        assert!((normal_quantile(0.975) - 1.959_964).abs() < 1e-4);
        assert!((normal_quantile(0.025) + 1.959_964).abs() < 1e-4);
        for p in [0.01, 0.1, 0.3, 0.45] {
            assert!((normal_quantile(p) + normal_quantile(1.0 - p)).abs() < 1e-7);
        }
    }

    #[test]
    fn gaussian_breakpoints_match_published_table() {
        // Classic SAX breakpoints for alphabet size 4: -0.6745, 0, 0.6745.
        let bp = Breakpoints::gaussian(4).unwrap();
        assert_eq!(bp.alphabet_size(), 4);
        assert!((bp.cuts()[0] + 0.6745).abs() < 1e-3);
        assert!(bp.cuts()[1].abs() < 1e-9);
        assert!((bp.cuts()[2] - 0.6745).abs() < 1e-3);
    }

    #[test]
    fn breakpoints_are_increasing() {
        for a in [2, 3, 4, 8, 16, 64, 256] {
            let bp = Breakpoints::gaussian(a).unwrap();
            assert_eq!(bp.alphabet_size(), a);
            assert!(bp.cuts().windows(2).all(|w| w[0] < w[1]));
        }
    }

    #[test]
    fn uniform_breakpoints() {
        let bp = Breakpoints::uniform(4, 0.0, 8.0).unwrap();
        assert_eq!(bp.cuts(), &[2.0, 4.0, 6.0]);
        assert!(Breakpoints::uniform(4, 3.0, 3.0).is_err());
        assert!(Breakpoints::uniform(1, 0.0, 1.0).is_err());
    }

    #[test]
    fn from_cuts_validation() {
        assert!(Breakpoints::from_cuts(vec![]).is_err());
        assert!(Breakpoints::from_cuts(vec![1.0, 1.0]).is_err());
        assert!(Breakpoints::from_cuts(vec![2.0, 1.0]).is_err());
        let bp = Breakpoints::from_cuts(vec![-1.0, 0.0, 1.0]).unwrap();
        assert_eq!(bp.alphabet_size(), 4);
    }

    #[test]
    fn symbol_for_and_range_are_consistent() {
        let bp = Breakpoints::gaussian(8).unwrap();
        for v in [-3.0, -0.9, -0.1, 0.0, 0.2, 0.9, 3.0] {
            let s = bp.symbol_for(v);
            let (lo, hi) = bp.symbol_range(s);
            assert!(
                lo <= v && v < hi || (v == lo),
                "value {v} not in [{lo}, {hi})"
            );
        }
        // Extremes map to first/last symbols.
        assert_eq!(bp.symbol_for(-100.0), 0);
        assert_eq!(bp.symbol_for(100.0), 7);
        assert_eq!(bp.symbol_range(0).0, f64::NEG_INFINITY);
        assert_eq!(bp.symbol_range(7).1, f64::INFINITY);
    }

    #[test]
    fn sax_word_basic() {
        let bp = Breakpoints::gaussian(4).unwrap();
        // A ramp from very negative to very positive should produce
        // non-decreasing symbols.
        let values: Vec<f64> = (0..16).map(|i| -2.0 + i as f64 * 0.27).collect();
        let w = SaxWord::from_values(&values, 4, &bp).unwrap();
        assert_eq!(w.len(), 4);
        assert!(!w.is_empty());
        assert!(w.symbols().windows(2).all(|p| p[0] <= p[1]));
    }

    #[test]
    fn isax_symbol_prefix_semantics() {
        let full = 0b1011_0110_u8;
        let s2 = IsaxSymbol::from_full_resolution(full, 2);
        assert_eq!(s2.value, 0b10);
        assert_eq!(s2.cardinality(), 4);
        assert!(s2.contains_full(full));
        assert!(s2.contains_full(0b1000_0000));
        assert!(!s2.contains_full(0b1100_0000));

        let s3 = s2.refine(full).unwrap();
        assert_eq!(s3.value, 0b101);
        assert_eq!(s3.bits, 3);
        assert!(s3.contains_full(full));

        let s8 = IsaxSymbol::from_full_resolution(full, 8);
        assert_eq!(s8.value, full);
        assert!(s8.refine(full).is_none());
    }

    #[test]
    fn isax_symbol_new_clamps_bits() {
        assert_eq!(IsaxSymbol::new(1, 0).bits, 1);
        assert_eq!(IsaxSymbol::new(1, 12).bits, MAX_SYMBOL_BITS);
    }

    #[test]
    fn isax_value_range_nests_under_refinement() {
        let bp = Breakpoints::gaussian(256).unwrap();
        let full = 0b0110_1011_u8;
        let mut prev: Option<(f64, f64)> = None;
        for bits in 1..=MAX_SYMBOL_BITS {
            let s = IsaxSymbol::from_full_resolution(full, bits);
            let (lo, hi) = s.value_range(&bp);
            assert!(lo < hi);
            if let Some((plo, phi)) = prev {
                assert!(lo >= plo && hi <= phi, "refinement must narrow the range");
            }
            prev = Some((lo, hi));
        }
    }

    #[test]
    fn isax_word_contains_full() {
        let full = vec![10u8, 200, 7, 133];
        let w = IsaxWord::from_full_resolution(&full, 3);
        assert_eq!(w.len(), 4);
        assert!(w.contains_full(&full));
        let mut other = full.clone();
        other[2] = 255; // different prefix at 3 bits (7 -> 000..., 255 -> 111...)
        assert!(!w.contains_full(&other));
        assert!(!w.contains_full(&full[..3]));
    }

    #[test]
    fn full_resolution_symbols_validation() {
        let bp256 = Breakpoints::gaussian(256).unwrap();
        let bp8 = Breakpoints::gaussian(8).unwrap();
        let v: Vec<f64> = (0..32).map(|i| (i as f64 * 0.2).sin()).collect();
        assert!(full_resolution_symbols(&v, 4, &bp256).is_ok());
        assert!(full_resolution_symbols(&v, 4, &bp8).is_err());
    }
}

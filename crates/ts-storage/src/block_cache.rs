//! A lock-striped, fixed-size block cache over a series file, built for the
//! **random verification reads** the tree-ordered candidate lists of
//! TS-Index and iSAX emit at query time (§6.1).
//!
//! [`crate::DiskSeries`] serves every read through one mutex and one
//! readahead window, which is the right shape for sequential scans but the
//! wrong one for random access: parallel traversal workers contend on the
//! single lock, and each miss used to evict and refetch a whole window for a
//! one-window read.  [`BlockCachedSeries`] instead splits the payload into
//! power-of-two **blocks**, hashes each block to one of a handful of
//! lock-striped shards (each shard owns its *own* file handle, so shards
//! never share a file offset), and keeps a small LRU of decoded blocks per
//! shard.  A miss fetches **exactly one block** — never more — and evicts at
//! most one cached block, so a random read pattern with locality hits warm
//! blocks without disturbing its neighbours.

use std::fs::File;
use std::io::{Read, Seek, SeekFrom};
use std::path::{Path, PathBuf};
use std::sync::atomic::{AtomicU64, Ordering};
use std::sync::{Mutex, OnceLock};

use ts_core::obs;

use crate::disk::{open_series_file, write_series, HEADER_BYTES};
use crate::error::{Result, StorageError};
use crate::store::SeriesStore;

/// Cached global metric handles (see `docs/observability.md`); aggregated
/// across every [`BlockCachedSeries`] in the process.  The per-instance
/// [`BlockCachedSeries::physical_reads`] counter remains the test-facing
/// read-amplification probe.
fn metric_hits() -> &'static obs::Counter {
    static M: OnceLock<&'static obs::Counter> = OnceLock::new();
    M.get_or_init(|| obs::counter("twin_block_cache_hits_total", &[]))
}

fn metric_misses() -> &'static obs::Counter {
    static M: OnceLock<&'static obs::Counter> = OnceLock::new();
    M.get_or_init(|| obs::counter("twin_block_cache_misses_total", &[]))
}

fn metric_evictions() -> &'static obs::Counter {
    static M: OnceLock<&'static obs::Counter> = OnceLock::new();
    M.get_or_init(|| obs::counter("twin_block_cache_evictions_total", &[]))
}

/// Geometry of a [`BlockCachedSeries`]: block size, shard count and total
/// cache capacity.  All three are normalised to powers of two / sane floors
/// by the builder methods, so every configuration is valid by construction.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub struct BlockCacheConfig {
    /// Values per block (power of two).
    block_values: usize,
    /// Number of lock-striped shards (power of two).
    shards: usize,
    /// Total number of cached blocks across all shards.
    capacity_blocks: usize,
}

impl Default for BlockCacheConfig {
    /// 1,024-value (8 KiB) blocks, 8 shards, 256 cached blocks (2 MiB).
    fn default() -> Self {
        Self {
            block_values: 1_024,
            shards: 8,
            capacity_blocks: 256,
        }
    }
}

impl BlockCacheConfig {
    /// Creates the default configuration.
    #[must_use]
    pub fn new() -> Self {
        Self::default()
    }

    /// Sets the block size in values, rounded up to a power of two (min 64).
    #[must_use]
    pub fn with_block_values(mut self, values: usize) -> Self {
        self.block_values = values.max(64).next_power_of_two();
        self
    }

    /// Sets the shard count, rounded up to a power of two (min 1).
    #[must_use]
    pub fn with_shards(mut self, shards: usize) -> Self {
        self.shards = shards.max(1).next_power_of_two();
        self
    }

    /// Sets the total cache capacity in blocks (min: one block per shard).
    #[must_use]
    pub fn with_capacity_blocks(mut self, blocks: usize) -> Self {
        self.capacity_blocks = blocks.max(1);
        self
    }

    /// Values per block.
    #[must_use]
    pub fn block_values(&self) -> usize {
        self.block_values
    }

    /// Number of lock-striped shards.
    #[must_use]
    pub fn shards(&self) -> usize {
        self.shards
    }

    /// Total cache capacity in blocks.
    #[must_use]
    pub fn capacity_blocks(&self) -> usize {
        self.capacity_blocks
    }
}

/// One decoded, cached block.
#[derive(Debug)]
struct CacheEntry {
    /// Block index within the file (`value_index / block_values`).
    block: usize,
    /// Decoded values (shorter than `block_values` only for the last block).
    data: Box<[f64]>,
}

/// One lock stripe: its own file handle (independent offset), its cached
/// blocks kept in MRU→LRU order, and a reusable byte scratch buffer.
#[derive(Debug)]
struct Shard {
    file: File,
    /// Most recently used first, so the hot block of a sequential or
    /// locality-heavy pattern is found on the first compare; the back is the
    /// LRU eviction victim.
    entries: Vec<CacheEntry>,
    scratch: Vec<u8>,
}

impl Shard {
    /// Returns a reference to `block`'s decoded values, reading it from disk
    /// on a miss (exactly one block per miss, evicting at most one entry).
    fn block<'a>(
        &'a mut self,
        block: usize,
        geometry: &Geometry,
        physical_reads: &AtomicU64,
    ) -> Result<&'a [f64]> {
        if let Some(i) = self.entries.iter().position(|e| e.block == block) {
            if i > 0 {
                // Move to front (MRU); a repeat hit costs one compare.
                self.entries[..=i].rotate_right(1);
            }
            metric_hits().inc();
            return Ok(&self.entries[0].data);
        }
        // Miss: fetch exactly this one block (clamped at the series end).
        let first_value = block * geometry.block_values;
        let values = geometry.block_values.min(geometry.len - first_value);
        self.scratch.resize(values * 8, 0);
        self.file
            .seek(SeekFrom::Start(HEADER_BYTES + (first_value as u64) * 8))?;
        self.file.read_exact(&mut self.scratch)?;
        physical_reads.fetch_add(1, Ordering::Relaxed);
        metric_misses().inc();
        let data: Box<[f64]> = self
            .scratch
            .chunks_exact(8)
            .map(|chunk| {
                let mut arr = [0u8; 8];
                arr.copy_from_slice(chunk);
                f64::from_le_bytes(arr)
            })
            .collect();
        if self.entries.len() >= geometry.per_shard_capacity {
            // LRU eviction: the back of the MRU-ordered list.
            self.entries.pop();
            metric_evictions().inc();
        }
        self.entries.insert(0, CacheEntry { block, data });
        Ok(&self.entries[0].data)
    }
}

/// The derived constants every read needs.
#[derive(Debug, Clone, Copy)]
struct Geometry {
    len: usize,
    block_values: usize,
    /// `block_values.trailing_zeros()`: blocks are found by shift, not div.
    block_shift: u32,
    shard_mask: usize,
    per_shard_capacity: usize,
}

/// A read-only series file served through a sharded block cache — the store
/// for **random verification reads** (see the module docs).
///
/// Safe to share behind `&self` across any number of query threads: a read
/// locks only the shards its blocks hash to, and adjacent blocks live in
/// different shards, so concurrent tree-ordered candidate fetches proceed in
/// parallel instead of convoying behind one mutex.
#[derive(Debug)]
pub struct BlockCachedSeries {
    shards: Vec<Mutex<Shard>>,
    geometry: Geometry,
    config: BlockCacheConfig,
    path: PathBuf,
    physical_reads: AtomicU64,
}

impl BlockCachedSeries {
    /// Opens an existing series file with the default cache geometry.
    ///
    /// # Errors
    ///
    /// Returns [`StorageError::InvalidFormat`] for a malformed file and I/O
    /// errors otherwise.
    pub fn open<P: AsRef<Path>>(path: P) -> Result<Self> {
        Self::open_with(path, BlockCacheConfig::default())
    }

    /// Opens an existing series file with an explicit cache geometry.
    ///
    /// # Errors
    ///
    /// Same conditions as [`BlockCachedSeries::open`].
    pub fn open_with<P: AsRef<Path>>(path: P, config: BlockCacheConfig) -> Result<Self> {
        let path = path.as_ref().to_path_buf();
        let (first, len) = open_series_file(&path)?;
        let geometry = Geometry {
            len,
            block_values: config.block_values,
            block_shift: config.block_values.trailing_zeros(),
            shard_mask: config.shards - 1,
            per_shard_capacity: (config.capacity_blocks / config.shards).max(1),
        };
        // Every shard owns an independently opened handle: no shared file
        // offset, so shards never serialise against each other on seeks.
        let mut shards = Vec::with_capacity(config.shards);
        for i in 0..config.shards {
            let file = if i == 0 {
                first.try_clone()?
            } else {
                File::open(&path)?
            };
            shards.push(Mutex::new(Shard {
                file,
                entries: Vec::new(),
                scratch: Vec::new(),
            }));
        }
        Ok(Self {
            shards,
            geometry,
            config,
            path,
            physical_reads: AtomicU64::new(0),
        })
    }

    /// Writes `values` to `path` (atomically, via [`write_series`]) and opens
    /// the resulting file with the default cache geometry.
    ///
    /// # Errors
    ///
    /// Propagates [`write_series`] and [`BlockCachedSeries::open`] errors.
    pub fn create<P: AsRef<Path>>(path: P, values: &[f64]) -> Result<Self> {
        write_series(&path, values)?;
        Self::open(path)
    }

    /// The path of the underlying file.
    #[must_use]
    pub fn path(&self) -> &Path {
        &self.path
    }

    /// The cache geometry the store was opened with.
    #[must_use]
    pub fn cache_config(&self) -> BlockCacheConfig {
        self.config
    }

    /// Number of physical block reads issued so far (exactly one per cache
    /// miss, never more).  Exposed so tests and benchmarks can assert read
    /// amplification bounds.
    #[must_use]
    pub fn physical_reads(&self) -> u64 {
        self.physical_reads.load(Ordering::Relaxed)
    }
}

impl SeriesStore for BlockCachedSeries {
    fn len(&self) -> usize {
        self.geometry.len
    }

    fn read_into(&self, start: usize, buf: &mut [f64]) -> Result<()> {
        let g = &self.geometry;
        let end = start.checked_add(buf.len()).filter(|&e| e <= g.len).ok_or(
            StorageError::OutOfBounds {
                start,
                len: buf.len(),
                series_len: g.len,
            },
        )?;
        if buf.is_empty() {
            return Ok(());
        }
        let first_block = start >> g.block_shift;
        let last_block = (end - 1) >> g.block_shift;
        for block in first_block..=last_block {
            let block_start = block << g.block_shift;
            // Overlap of [start, end) with this block, in value indices.
            let lo = start.max(block_start);
            let hi = end.min(block_start + g.block_values);
            let shard = &self.shards[block & g.shard_mask];
            // A panicked holder can leave at worst a missing cache entry
            // (entries are pushed only after a fully successful read), so a
            // poisoned shard is safe to recover.
            let mut shard = shard.lock().unwrap_or_else(|e| e.into_inner());
            let data = shard.block(block, g, &self.physical_reads)?;
            buf[lo - start..hi - start].copy_from_slice(&data[lo - block_start..hi - block_start]);
        }
        Ok(())
    }

    // Cap coalesced verification runs at a few cache blocks: longer runs
    // would pin more of the (sharded, bounded) cache per read without
    // reducing the number of physical block fetches.
    fn preferred_run_span(&self) -> Option<usize> {
        Some(4 * self.config.block_values())
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::memory::InMemorySeries;

    fn temp_path(name: &str) -> PathBuf {
        let mut p = std::env::temp_dir();
        p.push(format!("ts_storage_bc_{}_{name}.bin", std::process::id()));
        p
    }

    fn wave(n: usize) -> Vec<f64> {
        (0..n)
            .map(|i| (i as f64 * 0.13).sin() * 3.0 + i as f64 * 1e-4)
            .collect()
    }

    #[test]
    fn preferred_run_span_bounds_blocks_per_run() {
        let path = temp_path("run_span");
        write_series(&path, &wave(4_096)).unwrap();
        let config = BlockCacheConfig::new().with_block_values(128);
        let cached = BlockCachedSeries::open_with(&path, config).unwrap();
        let span = cached.preferred_run_span().unwrap();
        assert_eq!(span, 4 * 128);

        // A dense candidate set coalesced under the store's preferred span
        // never straddles more blocks than one read of `span + window` values
        // can: the span cap keeps each run within a fixed block budget.
        let window = 16usize;
        let mut candidates = ts_core::pipeline::CandidateSet::new();
        for p in 0..3_500u32 {
            candidates.push(p);
        }
        let runs = candidates.runs_with_span(window, span);
        assert!(runs.len() > 1, "span cap must split a dense set");
        let bv = config.block_values();
        let max_blocks = (span + window).div_ceil(bv) + 1;
        for &(first, last) in &runs {
            let start = first as usize;
            let end = last as usize + window;
            let blocks = (end - 1) / bv - start / bv + 1;
            assert!(
                blocks <= max_blocks,
                "run [{first}, {last}] touches {blocks} blocks (cap {max_blocks})"
            );
        }
        drop(cached);
        let _ = std::fs::remove_file(&path);
    }

    #[test]
    fn config_normalisation() {
        let c = BlockCacheConfig::new()
            .with_block_values(100)
            .with_shards(3)
            .with_capacity_blocks(0);
        assert_eq!(c.block_values(), 128);
        assert_eq!(c.shards(), 4);
        assert_eq!(c.capacity_blocks(), 1);
        assert_eq!(BlockCacheConfig::default().block_values(), 1_024);
    }

    #[test]
    fn matches_memory_store_on_all_access_patterns() {
        let path = temp_path("parity");
        let values = wave(10_000);
        let cached = BlockCachedSeries::create(&path, &values).unwrap();
        let mem = InMemorySeries::new(values.clone()).unwrap();
        assert_eq!(cached.len(), mem.len());
        assert_eq!(cached.path(), path.as_path());
        // Within a block, spanning blocks, the file tail, single values.
        for (s, l) in [
            (0usize, 1usize),
            (0, 1_024),
            (1_000, 100),
            (1_020, 10),
            (9_990, 10),
            (0, 10_000),
            (4_095, 2),
        ] {
            assert_eq!(
                cached.read(s, l).unwrap(),
                mem.read(s, l).unwrap(),
                "({s},{l})"
            );
        }
        let mut empty: [f64; 0] = [];
        cached.read_into(3, &mut empty).unwrap();
        assert!(matches!(
            cached.read(9_999, 2),
            Err(StorageError::OutOfBounds { .. })
        ));
        std::fs::remove_file(&path).ok();
    }

    #[test]
    fn one_physical_read_per_miss_and_hits_are_free() {
        let path = temp_path("misscount");
        let values = wave(64 * 128);
        let config = BlockCacheConfig::new()
            .with_block_values(128)
            .with_shards(4)
            .with_capacity_blocks(64);
        let cached = BlockCachedSeries::open_with(
            {
                write_series(&path, &values).unwrap();
                &path
            },
            config,
        )
        .unwrap();

        // A random-access pattern over windows: every miss fetches exactly
        // one block, so total physical reads == distinct blocks touched
        // (the cache holds all 64 blocks, nothing is evicted).
        let mut touched = std::collections::BTreeSet::new();
        let window = 96usize;
        let mut state = 0xDEADBEEFu64;
        for _ in 0..500 {
            state = state
                .wrapping_mul(6364136223846793005)
                .wrapping_add(1442695040888963407);
            let start = (state >> 33) as usize % (values.len() - window);
            for b in (start / 128)..=((start + window - 1) / 128) {
                touched.insert(b);
            }
            assert_eq!(
                cached.read(start, window).unwrap(),
                values[start..start + window]
            );
        }
        assert_eq!(
            cached.physical_reads(),
            touched.len() as u64,
            "exactly one physical read per distinct block, none per hit"
        );

        // Re-reading everything again is served fully from cache.
        let before = cached.physical_reads();
        assert_eq!(cached.read(0, values.len()).unwrap(), values);
        assert_eq!(cached.physical_reads(), before);
        std::fs::remove_file(&path).ok();
    }

    #[test]
    fn eviction_keeps_answers_correct_under_tiny_capacity() {
        let path = temp_path("evict");
        let values = wave(4_096);
        write_series(&path, &values).unwrap();
        let config = BlockCacheConfig::new()
            .with_block_values(64)
            .with_shards(2)
            .with_capacity_blocks(5); // far fewer than the 64 blocks
        let cached = BlockCachedSeries::open_with(&path, config).unwrap();
        // The reported geometry is exactly the configured one, even when the
        // capacity does not divide evenly across the shards.
        assert_eq!(cached.cache_config(), config);
        for pass in 0..3 {
            for &(s, l) in &[(0usize, 200usize), (2_000, 300), (3_900, 196), (63, 2)] {
                assert_eq!(
                    cached.read(s, l).unwrap(),
                    values[s..s + l],
                    "pass {pass} ({s},{l})"
                );
            }
        }
        assert!(cached.physical_reads() > 0);
        std::fs::remove_file(&path).ok();
    }

    #[test]
    fn concurrent_random_readers_get_correct_values() {
        let path = temp_path("concurrent");
        let values = wave(50_000);
        let cached = std::sync::Arc::new(BlockCachedSeries::create(&path, &values).unwrap());
        std::thread::scope(|scope| {
            for t in 0..8u64 {
                let cached = std::sync::Arc::clone(&cached);
                let values = &values;
                scope.spawn(move || {
                    let mut state = 0x1234_5678u64 ^ (t << 32);
                    let mut buf = vec![0.0_f64; 150];
                    for _ in 0..400 {
                        state = state
                            .wrapping_mul(6364136223846793005)
                            .wrapping_add(1442695040888963407);
                        let start = (state >> 33) as usize % (values.len() - buf.len());
                        cached.read_into(start, &mut buf).unwrap();
                        assert_eq!(buf, values[start..start + buf.len()]);
                    }
                });
            }
        });
        std::fs::remove_file(&path).ok();
    }

    #[test]
    fn poisoned_shard_recovers() {
        let path = temp_path("poison");
        let values = wave(2_048);
        let cached = std::sync::Arc::new(BlockCachedSeries::create(&path, &values).unwrap());
        let poisoner = std::sync::Arc::clone(&cached);
        let result = std::thread::spawn(move || {
            let _guard = poisoner.shards[0].lock().unwrap();
            panic!("poison shard 0");
        })
        .join();
        assert!(result.is_err());
        assert_eq!(cached.read(0, 2_048).unwrap(), values);
        std::fs::remove_file(&path).ok();
    }

    #[test]
    fn open_rejects_malformed_files() {
        let path = temp_path("badfile");
        std::fs::write(&path, b"NOTASERIESFILE").unwrap();
        assert!(matches!(
            BlockCachedSeries::open(&path),
            Err(StorageError::InvalidFormat(_))
        ));
        assert!(BlockCachedSeries::open("/definitely/not/here.bin").is_err());
        std::fs::remove_file(&path).ok();
    }
}

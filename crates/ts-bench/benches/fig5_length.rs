//! Criterion bench for Figure 5: query time vs subsequence length l at the
//! default ε, whole-series z-normalised data.

use criterion::{criterion_group, criterion_main, BenchmarkId, Criterion};
use std::hint::black_box;

use ts_bench::{build_engines, generate, HarnessOptions};
use twin_search::{Dataset, Method, Normalization, ParameterGrid, QueryWorkload};

fn bench_fig5(c: &mut Criterion) {
    let options = HarnessOptions {
        scale: 32,
        queries: 5,
        kernel: None,
    };
    let normalization = Normalization::WholeSeries;
    // One dataset is enough for the bench; the binary sweeps both.
    let dataset = Dataset::Insect;
    let series = generate(dataset, &options);
    let epsilon = dataset.default_epsilon_normalized();

    let mut group = c.benchmark_group(format!("fig5_length/{}", dataset.name()));
    group.sample_size(10);
    group.warm_up_time(std::time::Duration::from_millis(500));
    group.measurement_time(std::time::Duration::from_secs(2));
    for &len in &ParameterGrid::SUBSEQUENCE_LENGTHS {
        let engines = build_engines(&series, &Method::ALL, len, normalization);
        let workload =
            QueryWorkload::sample(engines[0].store(), len, options.queries, 5, normalization)
                .expect("valid workload");
        for engine in &engines {
            group.bench_with_input(
                BenchmarkId::new(engine.method().name(), len),
                &len,
                |b, _| {
                    b.iter(|| {
                        let mut total = 0usize;
                        for query in workload.iter() {
                            total += engine.count(black_box(query), epsilon).unwrap();
                        }
                        black_box(total)
                    });
                },
            );
        }
    }
    group.finish();
}

criterion_group!(benches, bench_fig5);
criterion_main!(benches);

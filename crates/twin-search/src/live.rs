//! The [`LiveEngine`]: a store + searcher pair that keeps answering queries
//! while the series grows.
//!
//! Where [`crate::Engine`] indexes a static, fully materialised series, the
//! live engine wraps an **appendable** store
//! ([`ts_storage::AppendableStore`]) together with one built method and
//! maintains the index incrementally through
//! [`ts_core::MaintainableSearcher`]: appending `k` points indexes exactly
//! the `k` fresh sliding windows, so the very next query sees them.  Store
//! and searcher sit behind one `RwLock` — any number of queries run
//! concurrently, appends take the lock exclusively — and every append is
//! accounted in an [`IngestStats`] record, the write-path counterpart of
//! [`ts_core::SearchStats`].
//!
//! Live engines operate on **raw values** ([`Normalization::None`]): the
//! whole-series z-normalisation regime is incompatible with appends (every
//! new point would shift the mean and std the existing index was built
//! under).  Callers that need normalisation can z-normalise the stream
//! against fixed, externally chosen parameters before appending.
//!
//! ## Query-vs-append fairness
//!
//! The engine's `RwLock` gives queries (readers) concurrency and appends
//! (writers) exclusivity, but `std::sync::RwLock` makes **no fairness
//! guarantee**: whether a waiting writer blocks new readers (write
//! preference) or readers overtake it (read preference) is up to the OS /
//! std implementation.  The contract callers can rely on is therefore
//! stated in terms of *lock hold time*, not acquisition order:
//!
//! * An append holds the write lock for `O(chunk)` work — one store append
//!   plus incremental maintenance of exactly the fresh windows — never for
//!   the whole stream.  Between two appends the lock is released, so
//!   queries waiting on the lock are admitted between any two append
//!   calls on every platform, whichever preference the lock implements.
//! * A query holds a read lock for one search; a *batch* holds it for the
//!   whole batch ([`LiveEngine::search_batch_threads`]), so sustained
//!   appends can delay a batch at most until the current append's chunk is
//!   indexed, and vice versa a huge batch delays appends — callers with
//!   latency-sensitive writers should split batches.
//! * Under **sustained appends** (a writer looping back-to-back chunks),
//!   readers still make progress: each append re-acquires the lock, giving
//!   waiting readers a window.  The
//!   `sustained_appends_do_not_starve_queries` test pins this liveness
//!   property: queries issued while an appender loops continuously must
//!   all complete.  The inverse (sustained queries starving appends) is
//!   possible under a strictly read-preferring lock; services that must
//!   bound append latency should throttle query admission upstream — the
//!   `ts-serve` daemon does this by dispatching queries and appends from
//!   one bounded admission queue instead of letting connection handlers
//!   block on the lock directly.

use std::path::{Path, PathBuf};
use std::sync::atomic::{AtomicU64, Ordering};
use std::sync::{Arc, Condvar, Mutex, RwLock};
use std::time::{Duration, Instant};

use ts_core::maintain::{IngestStats, MaintainableSearcher};
use ts_core::normalize::Normalization;
use ts_core::query::{SearchOutcome, TwinQuery};
use ts_ingest::{WalSeries, WalStats};
use ts_storage::{AppendableStore, InMemorySeries, Result, SeriesStore, StorageError};

use crate::engine::EngineConfig;
use crate::method::Method;

/// Counter making temp log names unique within a process.
static TEMP_LOG_COUNTER: AtomicU64 = AtomicU64::new(0);

/// How often the background checkpointer wakes to test its triggers.
const CHECKPOINT_POLL: Duration = Duration::from_millis(100);

/// Where a [`LiveEngine`] keeps the growing series.
#[derive(Debug, Clone, PartialEq, Eq)]
pub enum LiveBackend {
    /// In memory: fastest, gone on drop.
    Memory,
    /// A crash-safe WAL ([`WalSeries`]) in a temporary file, removed when
    /// the engine is dropped.
    TempLog,
    /// A crash-safe WAL ([`WalSeries`]) at the given path.  The files are
    /// created (overwritten) at build time and left in place on drop, so a
    /// restarted process can recover the ingested series via
    /// [`recover_from_log`].
    Log(PathBuf),
}

/// Removes a temporary append log (and its checkpoint snapshot) when the
/// engine is dropped.
#[derive(Debug)]
struct TempLogFile {
    path: PathBuf,
}

impl Drop for TempLogFile {
    fn drop(&mut self) {
        let _ = std::fs::remove_file(&self.path);
        let _ = std::fs::remove_file(ts_ingest::wal::snapshot_path_for(&self.path));
    }
}

/// The appendable store behind a live engine.
#[derive(Debug)]
enum LiveStore {
    Memory(InMemorySeries),
    Log {
        wal: WalSeries,
        /// Held only for its `Drop`: removes a temporary log on drop.
        _temp_guard: Option<TempLogFile>,
    },
}

impl LiveStore {
    /// Appends without waiting for durability: a memory store is done
    /// immediately (`None`), a WAL store buffers the record and returns the
    /// commit sequence the caller must pass to [`WalSeries::wait_durable`]
    /// **after** releasing the engine lock, so concurrent appends can share
    /// one group-commit fsync.
    fn append_buffered(&mut self, values: &[f64]) -> Result<Option<u64>> {
        match self {
            LiveStore::Memory(s) => {
                s.append(values)?;
                Ok(None)
            }
            LiveStore::Log { wal, .. } => Ok(Some(wal.append(values)?)),
        }
    }
}

impl SeriesStore for LiveStore {
    fn len(&self) -> usize {
        match self {
            LiveStore::Memory(s) => s.len(),
            LiveStore::Log { wal, .. } => wal.len(),
        }
    }

    fn read_into(&self, start: usize, buf: &mut [f64]) -> Result<()> {
        match self {
            LiveStore::Memory(s) => s.read_into(start, buf),
            LiveStore::Log { wal, .. } => wal.read_into(start, buf),
        }
    }

    fn read_range_into(&self, start: usize, buf: &mut [f64]) -> Result<()> {
        match self {
            LiveStore::Memory(s) => s.read_range_into(start, buf),
            LiveStore::Log { wal, .. } => wal.read_range_into(start, buf),
        }
    }
}

/// One built method, owned mutably so it can be maintained under appends.
#[derive(Debug)]
enum LiveSearcher {
    Sweep(ts_sweep::Sweepline),
    Kv(ts_kv::KvIndex),
    Isax(ts_sax::IsaxIndex),
    Ts(ts_index::TsIndex),
}

impl LiveSearcher {
    fn execute(&self, store: &LiveStore, query: &TwinQuery) -> Result<SearchOutcome> {
        match self {
            LiveSearcher::Sweep(s) => s.execute(store, query),
            LiveSearcher::Kv(s) => s.execute(store, query),
            LiveSearcher::Isax(s) => s.execute(store, query),
            LiveSearcher::Ts(s) => s.execute(store, query),
        }
    }

    fn on_append(&mut self, store: &LiveStore) -> Result<usize> {
        match self {
            LiveSearcher::Sweep(s) => s.on_append(store),
            LiveSearcher::Kv(s) => s.on_append(store),
            LiveSearcher::Isax(s) => s.on_append(store),
            LiveSearcher::Ts(s) => s.on_append(store),
        }
    }

    fn memory_bytes(&self) -> usize {
        match self {
            LiveSearcher::Sweep(_) => 0,
            LiveSearcher::Kv(s) => s.memory_bytes(),
            LiveSearcher::Isax(s) => s.memory_bytes(),
            LiveSearcher::Ts(s) => s.memory_bytes(),
        }
    }
}

/// Store, searcher and ingestion accounting — everything the lock guards.
#[derive(Debug)]
struct LiveInner {
    store: LiveStore,
    searcher: LiveSearcher,
    stats: IngestStats,
    /// `true` only while [`MaintainableSearcher::on_append`] is structurally
    /// mutating the index.  A panic mid-maintenance unwinds with the flag
    /// still set, marking the index as possibly inconsistent; lock-poison
    /// recovery then *rebuilds* the index from the store before serving any
    /// further query or append instead of silently trusting a half-mutated
    /// tree.
    in_maintenance: bool,
}

/// Rebuilds the index from the store if a previous maintenance pass
/// panicked partway (see [`LiveInner::in_maintenance`]).
fn repair_if_needed(inner: &mut LiveInner, config: &EngineConfig) -> Result<()> {
    if inner.in_maintenance {
        inner.searcher = build_searcher(&inner.store, config)?;
        inner.in_maintenance = false;
    }
    Ok(())
}

/// A live, appendable twin-search engine: queries run concurrently against
/// the built index while [`LiveEngine::append`] feeds the stream in (see the
/// module docs for the locking and normalisation contract).
///
/// WAL-backed engines (the [`LiveBackend::TempLog`] / [`LiveBackend::Log`]
/// backends) additionally keep a clone of the [`WalSeries`] handle
/// **outside** the lock: appends buffer the record and update the index
/// under the write lock, then wait for the covering group-commit fsync
/// after releasing it, so concurrent appenders batch into one fsync while
/// an `Ok` from [`LiveEngine::append`] still means "durable".  When the
/// configuration arms a checkpoint trigger, the engine owns a background
/// checkpointer thread that compacts the log into the snapshot; it is
/// stopped and joined on drop (graceful shutdown drains it; a killed
/// process just leaves the crash-safe files behind).
#[derive(Debug)]
pub struct LiveEngine {
    inner: RwLock<LiveInner>,
    config: EngineConfig,
    /// Clone of the WAL handle backing `inner.store`, if any: lets the
    /// durability wait and the checkpointer run without the engine lock.
    wal: Option<WalSeries>,
    /// Time appenders spent waiting on group-commit fsyncs, folded into
    /// [`IngestStats::store_time`] by [`LiveEngine::ingest_stats`].
    sync_wait: Mutex<Duration>,
    /// Background checkpointer (present only when a trigger is armed).
    checkpointer: Option<Checkpointer>,
}

/// Handle on the background checkpointer thread: polls the WAL's triggers
/// and stops + joins when dropped.
#[derive(Debug)]
struct Checkpointer {
    stop: Arc<(Mutex<bool>, Condvar)>,
    handle: Option<std::thread::JoinHandle<()>>,
}

impl Checkpointer {
    fn spawn(wal: WalSeries) -> Self {
        let stop = Arc::new((Mutex::new(false), Condvar::new()));
        let thread_stop = Arc::clone(&stop);
        let handle = std::thread::Builder::new()
            .name("twin-checkpointer".into())
            .spawn(move || {
                let (lock, cv) = &*thread_stop;
                loop {
                    let stopping = {
                        let stopped = lock.lock().unwrap_or_else(|e| e.into_inner());
                        let (stopped, _) = cv
                            .wait_timeout(stopped, CHECKPOINT_POLL)
                            .unwrap_or_else(|e| e.into_inner());
                        *stopped
                    };
                    if wal.checkpoint_due() {
                        // An error leaves the previous snapshot + full log
                        // intact; the next poll simply retries.  Checked on
                        // the stop path too, so a graceful close compacts a
                        // due tail even when the engine outlived no poll
                        // (e.g. a short `twin ingest` run).
                        let _ = wal.checkpoint_now();
                    }
                    if stopping {
                        return;
                    }
                }
            })
            .expect("failed to spawn checkpointer thread");
        Checkpointer {
            stop,
            handle: Some(handle),
        }
    }
}

impl Drop for Checkpointer {
    fn drop(&mut self) {
        let (lock, cv) = &*self.stop;
        *lock.lock().unwrap_or_else(|e| e.into_inner()) = true;
        cv.notify_all();
        if let Some(handle) = self.handle.take() {
            let _ = handle.join();
        }
    }
}

impl LiveEngine {
    /// Builds a live engine over `initial` (the stream's prefix, at least
    /// one subsequence window long) with the configured method, storing the
    /// series in the chosen backend.
    ///
    /// The configuration's normalisation must be [`Normalization::None`]
    /// (see the module docs); its `store` choice is ignored — `backend`
    /// decides where the series lives, because the static read-only store
    /// kinds (disk, disk-cached, mmap) cannot grow under appends.
    ///
    /// # Errors
    ///
    /// Returns an error for a non-raw normalisation regime, for an initial
    /// prefix shorter than one window, and propagates build and I/O
    /// failures.
    pub fn build(initial: &[f64], config: EngineConfig, backend: LiveBackend) -> Result<Self> {
        ensure_raw(&config)?;
        let store = match backend {
            LiveBackend::Memory => LiveStore::Memory(InMemorySeries::new(initial.to_vec())?),
            LiveBackend::TempLog => {
                let mut path = std::env::temp_dir();
                path.push(format!(
                    "twin-live-{}-{}.tslog",
                    std::process::id(),
                    TEMP_LOG_COUNTER.fetch_add(1, Ordering::Relaxed)
                ));
                let wal = WalSeries::create(&path, initial, config.wal)?;
                LiveStore::Log {
                    wal,
                    _temp_guard: Some(TempLogFile { path }),
                }
            }
            LiveBackend::Log(path) => LiveStore::Log {
                wal: WalSeries::create(&path, initial, config.wal)?,
                _temp_guard: None,
            },
        };
        Self::from_store(store, config)
    }

    /// Builds the configured index over `store`'s current contents and wraps
    /// both behind the lock (shared by [`LiveEngine::build`] and
    /// [`recover_from_log`]).
    fn from_store(store: LiveStore, config: EngineConfig) -> Result<Self> {
        let searcher = build_searcher(&store, &config)?;
        let wal = match &store {
            LiveStore::Log { wal, .. } => Some(wal.clone()),
            LiveStore::Memory(_) => None,
        };
        // `background: false` deliberately leaves an armed trigger with no
        // thread acting on it — the wedged-checkpointer scenario the
        // checkpoint-lag watchdog exists to catch.
        let checkpointer = wal
            .as_ref()
            .filter(|w| w.config().checkpointing_enabled() && w.config().background)
            .map(|w| Checkpointer::spawn(w.clone()));
        Ok(Self {
            inner: RwLock::new(LiveInner {
                store,
                searcher,
                stats: IngestStats::default(),
                in_maintenance: false,
            }),
            config,
            wal,
            sync_wait: Mutex::new(Duration::ZERO),
            checkpointer,
        })
    }

    /// The configuration the engine was built with.
    #[must_use]
    pub fn config(&self) -> &EngineConfig {
        &self.config
    }

    /// The method behind this engine.
    #[must_use]
    pub fn method(&self) -> Method {
        self.config.method
    }

    /// Current length of the ingested series.
    #[must_use]
    pub fn len(&self) -> usize {
        self.read_inner().store.len()
    }

    /// Returns `true` if nothing has been ingested (never the case after a
    /// successful build: the initial prefix is at least one window).
    #[must_use]
    pub fn is_empty(&self) -> bool {
        self.len() == 0
    }

    /// Returns `true` when the series lives in a crash-safe append log.
    #[must_use]
    pub fn is_disk_backed(&self) -> bool {
        matches!(self.read_inner().store, LiveStore::Log { .. })
    }

    /// Approximate heap memory used by the index structure.
    #[must_use]
    pub fn index_memory_bytes(&self) -> usize {
        self.read_inner().searcher.memory_bytes()
    }

    /// Cumulative ingestion statistics.  For WAL-backed engines the store
    /// time includes the group-commit fsync waits, which happen outside the
    /// engine lock.
    #[must_use]
    pub fn ingest_stats(&self) -> IngestStats {
        let mut stats = self.read_inner().stats;
        stats.store_time += *self.sync_wait.lock().unwrap_or_else(|e| e.into_inner());
        stats
    }

    /// WAL activity counters (group-commit batches, fsyncs saved,
    /// checkpoints, recovery tail), when the engine is WAL-backed.
    #[must_use]
    pub fn wal_stats(&self) -> Option<WalStats> {
        self.wal.as_ref().map(WalSeries::stats)
    }

    /// `true` when a background checkpointer thread is running.
    #[must_use]
    pub fn checkpointing_active(&self) -> bool {
        self.checkpointer.is_some()
    }

    /// Current checkpoint lag of the backing WAL as `(records, bytes)`
    /// accumulated in the log tail, or `None` for memory-backed engines.
    #[must_use]
    pub fn checkpoint_lag(&self) -> Option<(u64, u64)> {
        self.wal.as_ref().map(WalSeries::checkpoint_lag)
    }

    /// Takes a checkpoint immediately (for tests, the CLI and the daemon's
    /// checkpoint op), returning the number of values the new snapshot
    /// covers, `None` when nothing new was durable, or `Ok(None)` trivially
    /// for memory-backed engines.
    ///
    /// # Errors
    ///
    /// Propagates snapshot-write and log-rewrite failures.
    pub fn checkpoint_now(&self) -> Result<Option<usize>> {
        match &self.wal {
            Some(wal) => wal.checkpoint_now(),
            None => Ok(None),
        }
    }

    /// Appends `values` to the stream and brings the index up to date,
    /// returning the number of fresh windows indexed.  Takes the write lock:
    /// queries issued concurrently see the series either entirely before or
    /// entirely after this append.
    ///
    /// # Errors
    ///
    /// Propagates store and maintenance failures.  Maintenance resumes from
    /// the searcher's own indexed count ([`MaintainableSearcher`] contract),
    /// so if it fails partway the next append indexes the missed windows
    /// first — nothing is skipped or double-indexed.
    pub fn append(&self, values: &[f64]) -> Result<usize> {
        // A poisoned lock is recovered rather than propagated as a panic
        // cascade.  A panic *outside* index maintenance leaves at worst a
        // store that ran ahead of the index — the same state a failed append
        // leaves, repaired by the resumable maintenance contract.  A panic
        // *during* maintenance is flagged by `in_maintenance` and repaired
        // here by rebuilding the index from the store before proceeding.
        let mut inner = self.inner.write().unwrap_or_else(|e| e.into_inner());
        repair_if_needed(&mut inner, &self.config)?;
        let store_started = Instant::now();
        let commit_seq = inner.store.append_buffered(values)?;
        let store_time = store_started.elapsed();
        let maintain_started = Instant::now();
        let LiveInner {
            store,
            searcher,
            in_maintenance,
            ..
        } = &mut *inner;
        // The flag stays set only if on_append unwinds; an `Err` return is
        // retry-safe by the MaintainableSearcher contract and needs no
        // rebuild.
        *in_maintenance = true;
        let maintained = searcher.on_append(store);
        *in_maintenance = false;
        let windows = maintained?;
        inner.stats = inner.stats.merged(IngestStats {
            points_appended: values.len(),
            append_calls: 1,
            windows_indexed: windows,
            store_time,
            maintain_time: maintain_started.elapsed(),
        });
        drop(inner);
        // Durability wait happens *outside* the lock so concurrent appends
        // can share one group-commit fsync (and queries are not blocked on
        // I/O).  Returning an error here withholds the ack: the record may
        // be in the page cache and visible to queries, but the caller must
        // not treat it as committed.
        if let (Some(seq), Some(wal)) = (commit_seq, &self.wal) {
            let wait_started = Instant::now();
            wal.wait_durable(seq)?;
            let waited = wait_started.elapsed();
            *self.sync_wait.lock().unwrap_or_else(|e| e.into_inner()) += waited;
        }
        Ok(windows)
    }

    /// Answers a [`TwinQuery`] against the current state of the stream.
    ///
    /// # Errors
    ///
    /// Propagates query-validation and storage errors.
    pub fn execute(&self, query: &TwinQuery) -> Result<SearchOutcome> {
        let inner = self.read_searcher()?;
        inner.searcher.execute(&inner.store, query)
    }

    /// Answers a batch of queries, fanning them out across up to `threads`
    /// worker threads under one read lock (appends wait for the batch).  A
    /// singleton TS-Index batch routes through the index's multi-threaded
    /// traversal, mirroring [`crate::Engine::search_batch_threads`].
    ///
    /// # Errors
    ///
    /// Returns the first error raised by any query in the batch.
    pub fn search_batch_threads(
        &self,
        queries: &[TwinQuery],
        threads: usize,
    ) -> Result<Vec<SearchOutcome>> {
        let inner = self.read_searcher()?;
        crate::engine::run_batch(queries, threads, self.method(), |query| {
            inner.searcher.execute(&inner.store, query)
        })
    }

    /// [`LiveEngine::search_batch_threads`] with the machine's available
    /// parallelism as the worker budget.
    ///
    /// # Errors
    ///
    /// Same as [`LiveEngine::search_batch_threads`].
    pub fn search_batch(&self, queries: &[TwinQuery]) -> Result<Vec<SearchOutcome>> {
        let threads = std::thread::available_parallelism()
            .map(std::num::NonZeroUsize::get)
            .unwrap_or(1);
        self.search_batch_threads(queries, threads)
    }

    /// Twin subsequence search against the current state of the stream.
    /// Thin wrapper over [`LiveEngine::execute`].
    ///
    /// # Errors
    ///
    /// Propagates query-validation and storage errors.
    pub fn search(&self, query: &[f64], epsilon: f64) -> Result<Vec<usize>> {
        Ok(self
            .execute(&TwinQuery::new(query.to_vec(), epsilon))?
            .positions)
    }

    /// Reads a subsequence of the ingested series (e.g. to sample queries
    /// from the data seen so far).
    ///
    /// # Errors
    ///
    /// Propagates storage errors and out-of-bounds reads.
    pub fn read(&self, start: usize, len: usize) -> Result<Vec<f64>> {
        self.read_inner().store.read(start, len)
    }

    /// Path of the crash-safe append log backing this engine, if any.
    #[must_use]
    pub fn log_path(&self) -> Option<PathBuf> {
        self.wal.as_ref().map(|w| w.path().to_path_buf())
    }

    /// A read guard for accessors that do not consult the index (length,
    /// stats, raw reads): safe even while the index awaits repair.
    fn read_inner(&self) -> std::sync::RwLockReadGuard<'_, LiveInner> {
        // Readers recover a poisoned lock for the same reason `append` does:
        // a panic outside maintenance leaves at worst an index trailing the
        // store, and a panic inside maintenance is flagged and repaired
        // before the index is consulted again (see `read_searcher`).
        self.inner.read().unwrap_or_else(|e| e.into_inner())
    }

    /// A read guard for the query path: if a previous maintenance pass
    /// panicked mid-mutation, first takes the write lock and rebuilds the
    /// index from the store, so queries never traverse a half-mutated tree.
    fn read_searcher(&self) -> Result<std::sync::RwLockReadGuard<'_, LiveInner>> {
        loop {
            let guard = self.read_inner();
            if !guard.in_maintenance {
                return Ok(guard);
            }
            drop(guard);
            let mut inner = self.inner.write().unwrap_or_else(|e| e.into_inner());
            repair_if_needed(&mut inner, &self.config)?;
            // Loop instead of downgrading (std's RwLock cannot): another
            // writer may slip in between, in which case the re-check repairs
            // again or proceeds.
        }
    }
}

/// Recovers a live engine from an existing WAL written by a previous
/// process: the newest valid checkpoint snapshot (if any) plus the log
/// tail, instead of a full log replay (torn tails are truncated away by
/// the log open).  The snapshot prefix is served through the store kind in
/// `config.wal.snapshot_store` — memory, readahead disk, block-cached or
/// mmap — closing the old "recovered stream is memory-only" gap.  The
/// configured index is then rebuilt over the recovered series.
///
/// # Errors
///
/// Same conditions as [`LiveEngine::build`], plus log/snapshot-format
/// errors.
pub fn recover_from_log<P: AsRef<Path>>(path: P, config: EngineConfig) -> Result<LiveEngine> {
    ensure_raw(&config)?;
    LiveEngine::from_wal(WalSeries::open(path, config.wal)?, config)
}

impl LiveEngine {
    /// Wraps an already-open [`WalSeries`] in a live engine, building the
    /// configured index over its current contents.  This is how a dormant
    /// tenant promotes to a live one without reopening the files.
    ///
    /// # Errors
    ///
    /// Same conditions as [`LiveEngine::build`].
    pub fn from_wal(wal: WalSeries, config: EngineConfig) -> Result<Self> {
        ensure_raw(&config)?;
        Self::from_store(
            LiveStore::Log {
                wal,
                _temp_guard: None,
            },
            config,
        )
    }
}

/// Rejects configurations a live engine cannot maintain under appends.
fn ensure_raw(config: &EngineConfig) -> Result<()> {
    if config.normalization != Normalization::None {
        return Err(StorageError::Core(ts_core::TsError::InvalidParameter(
            "a LiveEngine indexes raw values: whole-series and per-subsequence \
             normalisation cannot be maintained under appends"
                .into(),
        )));
    }
    Ok(())
}

/// Builds the configured method over the current contents of `store`
/// (the live counterpart of [`crate::Engine::build`]'s dispatch).
fn build_searcher(store: &LiveStore, config: &EngineConfig) -> Result<LiveSearcher> {
    Ok(match config.method {
        Method::Sweepline => LiveSearcher::Sweep(ts_sweep::Sweepline::new()),
        Method::KvIndex => LiveSearcher::Kv(ts_kv::KvIndex::build(
            store,
            ts_kv::KvIndexConfig::new(config.subsequence_len).with_buckets(config.kv_buckets),
        )?),
        Method::Isax => {
            // Raw values: fit equi-width breakpoints to the prefix's range.
            // Appended values outside it quantise into the edge symbols
            // (whose ranges extend to ±∞), so pruning stays sound.
            let mut lo = f64::INFINITY;
            let mut hi = f64::NEG_INFINITY;
            let mut buf = vec![0.0_f64; store.len()];
            store.read_into(0, &mut buf)?;
            for &v in &buf {
                lo = lo.min(v);
                hi = hi.max(v);
            }
            let isax_config = ts_sax::IsaxConfig::for_raw(config.subsequence_len, lo, hi)
                .map_err(StorageError::Core)?
                .with_segments(config.segments)
                .with_leaf_capacity(config.isax_leaf_capacity);
            LiveSearcher::Isax(ts_sax::IsaxIndex::build(store, isax_config)?)
        }
        Method::TsIndex => {
            let ts_config = ts_index::TsIndexConfig::new(config.subsequence_len)
                .and_then(|c| {
                    c.with_capacities(config.tsindex_min_capacity, config.tsindex_max_capacity)
                })
                .map_err(StorageError::Core)?;
            LiveSearcher::Ts(ts_index::TsIndex::build(store, ts_config)?)
        }
    })
}

#[cfg(test)]
mod tests {
    use super::*;

    fn stream() -> Vec<f64> {
        (0..2_400)
            .map(|i| (i as f64 * 0.06).sin() * 3.0 + (i as f64 * 0.017).cos())
            .collect()
    }

    #[test]
    fn rejects_normalised_regimes_and_short_prefixes() {
        let values = stream();
        let config = EngineConfig::new(Method::TsIndex, 50);
        assert!(
            LiveEngine::build(&values, config, LiveBackend::Memory).is_err(),
            "default whole-series normalisation must be rejected"
        );
        let raw = config.with_normalization(Normalization::None);
        assert!(LiveEngine::build(&values[..10], raw, LiveBackend::Memory).is_err());
        assert!(LiveEngine::build(&values, raw, LiveBackend::Memory).is_ok());
    }

    #[test]
    fn appends_become_queryable_for_every_method() {
        let values = stream();
        let len = 60;
        let split = 1_600;
        for method in Method::ALL {
            let config = EngineConfig::new(method, len).with_normalization(Normalization::None);
            let live = LiveEngine::build(&values[..split], config, LiveBackend::Memory).unwrap();
            let bulk =
                crate::Engine::build(&values, config.with_normalization(Normalization::None))
                    .unwrap();
            for chunk in values[split..].chunks(300) {
                live.append(chunk).unwrap();
            }
            assert_eq!(live.len(), values.len());

            // A query targeting a window that exists only in the appended
            // suffix answers exactly like a bulk build over the full series.
            let query = live.read(2_000, len).unwrap();
            let outcome = live
                .execute(&TwinQuery::new(query.clone(), 0.4).collect_stats())
                .unwrap();
            assert!(outcome.positions.contains(&2_000), "{method}");
            assert_eq!(
                outcome.positions,
                bulk.search(&query, 0.4).unwrap(),
                "{method}"
            );
            assert!(outcome.stats_consistent(), "{method}");

            let stats = live.ingest_stats();
            assert_eq!(stats.points_appended, values.len() - split);
            assert_eq!(stats.append_calls, values[split..].chunks(300).count());
            if method == Method::Sweepline {
                assert_eq!(stats.windows_indexed, 0);
            } else {
                assert_eq!(stats.windows_indexed, values.len() - split);
                assert!(live.index_memory_bytes() > 0);
            }
        }
    }

    #[test]
    fn batches_and_parallel_routing_work_on_live_engines() {
        let values = stream();
        let len = 80;
        let config = EngineConfig::new(Method::TsIndex, len)
            .with_normalization(Normalization::None)
            .with_tsindex_capacities(4, 12);
        let live = LiveEngine::build(&values[..2_000], config, LiveBackend::Memory).unwrap();
        live.append(&values[2_000..]).unwrap();

        let queries: Vec<TwinQuery> = [100usize, 900, 2_100]
            .iter()
            .map(|&p| TwinQuery::new(live.read(p, len).unwrap(), 0.4))
            .collect();
        let batch = live.search_batch_threads(&queries, 4).unwrap();
        assert_eq!(batch.len(), 3);
        for (q, outcome) in queries.iter().zip(&batch) {
            assert_eq!(outcome.positions, live.search(q.values(), 0.4).unwrap());
        }
        assert!(live.search_batch(&[]).unwrap().is_empty());

        // Singleton TS-Index batches get the whole (clamped) thread budget.
        let single = live.search_batch_threads(&queries[..1], 4).unwrap();
        assert_eq!(single[0].threads_used, ts_core::exec::clamp_threads(4));
        assert_eq!(single[0].positions, batch[0].positions);
    }

    #[test]
    fn temp_log_backend_is_crash_safe_and_cleaned_up() {
        let values = stream();
        let len = 50;
        let config =
            EngineConfig::new(Method::TsIndex, len).with_normalization(Normalization::None);
        let live = LiveEngine::build(&values[..1_000], config, LiveBackend::TempLog).unwrap();
        assert!(live.is_disk_backed());
        assert!(!live.is_empty());
        let path = live.log_path().unwrap();
        assert!(path.exists());
        live.append(&values[1_000..1_500]).unwrap();
        let query = live.read(1_200, len).unwrap();
        assert!(live.search(&query, 0.3).unwrap().contains(&1_200));
        drop(live);
        assert!(!path.exists(), "temp log removed on drop");
    }

    #[test]
    fn named_log_backend_recovers_across_engines() {
        let values = stream();
        let len = 50;
        let mut path = std::env::temp_dir();
        path.push(format!("twin_live_test_{}.tslog", std::process::id()));
        let config = EngineConfig::new(Method::Isax, len).with_normalization(Normalization::None);
        {
            let live = LiveEngine::build(&values[..1_000], config, LiveBackend::Log(path.clone()))
                .unwrap();
            live.append(&values[1_000..1_800]).unwrap();
            assert_eq!(live.log_path().as_deref(), Some(path.as_path()));
        }
        // A new process (here: a new engine) recovers the ingested series.
        let recovered = recover_from_log(&path, config).unwrap();
        assert_eq!(recovered.len(), 1_800);
        let query = recovered.read(1_500, len).unwrap();
        assert!(recovered.search(&query, 0.3).unwrap().contains(&1_500));
        assert!(
            recover_from_log(&path, config.with_normalization(Normalization::WholeSeries)).is_err()
        );
        std::fs::remove_file(&path).ok();
    }

    #[test]
    fn checkpointed_log_recovers_from_snapshot_plus_tail_for_any_store() {
        let values = stream();
        let len = 50;
        let mut path = std::env::temp_dir();
        path.push(format!("twin_live_wal_test_{}.tslog", std::process::id()));
        let config = EngineConfig::new(Method::TsIndex, len)
            .with_normalization(Normalization::None)
            .with_wal(ts_ingest::WalConfig::default());
        {
            let live = LiveEngine::build(&values[..1_000], config, LiveBackend::Log(path.clone()))
                .unwrap();
            live.append(&values[1_000..1_500]).unwrap();
            assert_eq!(live.checkpoint_now().unwrap(), Some(1_500));
            live.append(&values[1_500..1_800]).unwrap();
            let stats = live.wal_stats().unwrap();
            assert_eq!(stats.checkpoints, 1);
        }
        let query = &values[1_600..1_600 + len];
        for kind in ts_storage::StoreKind::ALL {
            let recovered = recover_from_log(
                &path,
                config.with_wal(ts_ingest::WalConfig::default().with_snapshot_store(kind)),
            )
            .unwrap();
            assert_eq!(recovered.len(), 1_800, "{kind:?}");
            assert!(
                recovered.search(query, 0.3).unwrap().contains(&1_600),
                "{kind:?}"
            );
            // Recovery replayed only the post-checkpoint tail.
            let stats = recovered.wal_stats().unwrap();
            assert_eq!(stats.last_recovery_tail_values, 300, "{kind:?}");
        }
        std::fs::remove_file(&path).ok();
        std::fs::remove_file(ts_ingest::wal::snapshot_path_for(&path)).ok();
    }

    #[test]
    fn background_checkpointer_compacts_without_disturbing_queries() {
        let values = stream();
        let len = 50;
        let wal_config = ts_ingest::WalConfig::default().with_checkpoint_records(4);
        let config = EngineConfig::new(Method::KvIndex, len)
            .with_normalization(Normalization::None)
            .with_wal(wal_config);
        let live = LiveEngine::build(&values[..1_000], config, LiveBackend::TempLog).unwrap();
        assert!(live.checkpointing_active());
        for chunk in values[1_000..2_000].chunks(100) {
            live.append(chunk).unwrap();
        }
        // The checkpointer polls every 100ms; give it a bounded window.
        let deadline = Instant::now() + Duration::from_secs(10);
        while live.wal_stats().unwrap().checkpoints == 0 && Instant::now() < deadline {
            std::thread::sleep(Duration::from_millis(20));
        }
        assert!(
            live.wal_stats().unwrap().checkpoints >= 1,
            "background checkpointer never fired"
        );
        // Queries still answer exactly across the snapshot/tail boundary.
        let query = live.read(1_500, len).unwrap();
        assert!(live.search(&query, 0.3).unwrap().contains(&1_500));
        // Drop joins the checkpointer and removes the temp files.
        let path = live.log_path().unwrap();
        drop(live);
        assert!(!path.exists());
        assert!(!ts_ingest::wal::snapshot_path_for(&path).exists());
    }

    #[test]
    fn background_false_leaves_armed_triggers_unserviced() {
        // The wedged-checkpointer knob: a trigger is armed (checkpoint_due
        // fires) but no thread acts on it, so lag only ever grows.
        let values = stream();
        let wal_config = ts_ingest::WalConfig::default()
            .with_checkpoint_records(4)
            .with_background(false);
        let config = EngineConfig::new(Method::Sweepline, 50)
            .with_normalization(Normalization::None)
            .with_wal(wal_config);
        let live = LiveEngine::build(&values[..500], config, LiveBackend::TempLog).unwrap();
        assert!(!live.checkpointing_active());
        let (records_before, _) = live.checkpoint_lag().unwrap();
        for chunk in values[500..1_000].chunks(50) {
            live.append(chunk).unwrap();
        }
        let (records, bytes) = live.checkpoint_lag().unwrap();
        assert_eq!(records, records_before + 10);
        assert!(bytes > 0);
        assert_eq!(live.wal_stats().unwrap().checkpoints, 0);
    }

    #[test]
    fn group_commit_acks_are_durable_across_recovery() {
        let values = stream();
        let len = 40;
        let mut path = std::env::temp_dir();
        path.push(format!("twin_live_gc_test_{}.tslog", std::process::id()));
        let wal_config =
            ts_ingest::WalConfig::default().with_group_commit(Duration::from_millis(5), 4);
        let config = EngineConfig::new(Method::Sweepline, len)
            .with_normalization(Normalization::None)
            .with_wal(wal_config);
        {
            let live =
                LiveEngine::build(&values[..500], config, LiveBackend::Log(path.clone())).unwrap();
            std::thread::scope(|scope| {
                for t in 0..4 {
                    let live = &live;
                    let values = &values;
                    scope.spawn(move || {
                        for chunk in values[500 + t * 100..500 + (t + 1) * 100].chunks(10) {
                            live.append(chunk).unwrap();
                        }
                    });
                }
            });
            assert_eq!(live.len(), 900);
            let stats = live.wal_stats().unwrap();
            assert_eq!(stats.appends, 40);
            assert!(stats.fsyncs <= stats.appends);
        }
        // Every acked append survives a restart byte-identically in length
        // (ordering of concurrent chunks is interleaved, but nothing acked
        // may be missing).
        let recovered = recover_from_log(&path, config).unwrap();
        assert_eq!(recovered.len(), 900);
        std::fs::remove_file(&path).ok();
        std::fs::remove_file(ts_ingest::wal::snapshot_path_for(&path)).ok();
    }

    #[test]
    fn caught_panic_in_one_thread_does_not_poison_later_searches() {
        let values = stream();
        let len = 50;
        let config =
            EngineConfig::new(Method::TsIndex, len).with_normalization(Normalization::None);
        let live = LiveEngine::build(&values[..1_000], config, LiveBackend::Memory).unwrap();
        let query = live.read(300, len).unwrap();
        let before = live.search(&query, 0.4).unwrap();

        // One thread panics while holding the lock (write side: the worst
        // case).  The panic is caught at the thread boundary…
        std::thread::scope(|scope| {
            let result = scope
                .spawn(|| {
                    let _guard = live.inner.write().unwrap();
                    panic!("simulated query/maintenance panic while holding the lock");
                })
                .join();
            assert!(result.is_err(), "the poisoning thread must panic");
        });

        // …and every later search and append still works: the engine
        // recovers the poisoned lock instead of cascading the panic.
        assert_eq!(live.search(&query, 0.4).unwrap(), before);
        live.append(&values[1_000..1_200]).unwrap();
        assert_eq!(live.len(), 1_200);
        let fresh = live.read(1_100, len).unwrap();
        assert!(live.search(&fresh, 0.3).unwrap().contains(&1_100));
        assert_eq!(live.ingest_stats().points_appended, 200);
    }

    #[test]
    fn panic_during_index_maintenance_triggers_rebuild_not_corruption() {
        let values = stream();
        let len = 50;
        let config =
            EngineConfig::new(Method::TsIndex, len).with_normalization(Normalization::None);
        let live = LiveEngine::build(&values[..1_000], config, LiveBackend::Memory).unwrap();
        let query = live.read(300, len).unwrap();
        let before = live.search(&query, 0.4).unwrap();

        // Simulate a panic *inside* on_append: the in_maintenance flag is
        // set when the unwind happens, marking the index as suspect.
        std::thread::scope(|scope| {
            let result = scope
                .spawn(|| {
                    let mut guard = live.inner.write().unwrap();
                    guard.in_maintenance = true;
                    panic!("simulated panic mid index mutation");
                })
                .join();
            assert!(result.is_err());
        });

        // The next query repairs the index (rebuild from the store) rather
        // than traversing a possibly half-mutated tree; answers are exact.
        assert_eq!(live.search(&query, 0.4).unwrap(), before);
        assert!(!live.read_inner().in_maintenance, "repair cleared the flag");

        // Appends also repair-then-proceed, and stay queryable.
        live.append(&values[1_000..1_300]).unwrap();
        let fresh = live.read(1_200, len).unwrap();
        assert!(live.search(&fresh, 0.3).unwrap().contains(&1_200));
        // The rebuilt + maintained index matches a bulk build exactly.
        let bulk = crate::Engine::build(&values[..1_300], config).unwrap();
        assert_eq!(
            live.search(&query, 0.4).unwrap(),
            bulk.search(&query, 0.4).unwrap()
        );
    }

    #[test]
    fn sustained_appends_do_not_starve_queries() {
        // Liveness half of the fairness contract (see the module docs): a
        // writer looping back-to-back appends releases the lock between
        // chunks, so concurrent queries must all complete while the append
        // pressure is sustained.  Starvation would hang this test (and trip
        // the harness timeout) rather than fail an assertion.
        use std::sync::atomic::{AtomicBool, Ordering};

        let values = stream();
        let len = 40;
        let config =
            EngineConfig::new(Method::TsIndex, len).with_normalization(Normalization::None);
        let live = LiveEngine::build(&values[..600], config, LiveBackend::Memory).unwrap();
        let query = live.read(100, len).unwrap();
        let readers_done = AtomicBool::new(false);

        std::thread::scope(|scope| {
            let live = &live;
            let readers_done = &readers_done;
            // The appender keeps the write pressure up until every reader
            // has finished — queries never get a quiet window.
            let appender = scope.spawn(move || {
                let mut appended = 0usize;
                loop {
                    let start = 600 + (appended % 1_000);
                    live.append(&values[start..start + 20]).unwrap();
                    appended += 20;
                    if readers_done.load(Ordering::Relaxed) {
                        return appended;
                    }
                }
            });
            let readers: Vec<_> = (0..2)
                .map(|_| {
                    let q = query.clone();
                    scope.spawn(move || {
                        let mut lengths = Vec::with_capacity(15);
                        for _ in 0..15 {
                            live.search(&q, 0.5).unwrap();
                            lengths.push(live.len());
                        }
                        lengths
                    })
                })
                .collect();
            for reader in readers {
                let lengths = reader.join().unwrap();
                assert_eq!(lengths.len(), 15, "every query completed under load");
                assert!(
                    lengths.windows(2).all(|w| w[0] <= w[1]),
                    "observed series length is monotone"
                );
            }
            readers_done.store(true, Ordering::Relaxed);
            let appended = appender.join().unwrap();
            assert!(appended > 0, "append pressure was actually sustained");
        });
    }

    #[test]
    fn concurrent_append_and_query_do_not_lose_updates() {
        let values = stream();
        let len = 40;
        let config =
            EngineConfig::new(Method::TsIndex, len).with_normalization(Normalization::None);
        let live = LiveEngine::build(&values[..600], config, LiveBackend::Memory).unwrap();
        let query = live.read(100, len).unwrap();

        std::thread::scope(|scope| {
            let live = &live;
            let chunks: Vec<&[f64]> = values[600..].chunks(200).collect();
            let appender = scope.spawn(move || {
                for chunk in chunks {
                    live.append(chunk).unwrap();
                }
            });
            let q = query.clone();
            let reader = scope.spawn(move || {
                let mut last = 0usize;
                for _ in 0..20 {
                    let hits = live.search(&q, 0.5).unwrap().len();
                    assert!(hits >= last, "result sets only ever grow");
                    last = hits;
                }
            });
            appender.join().unwrap();
            reader.join().unwrap();
        });
        assert_eq!(live.len(), values.len());
        // After the dust settles the live engine matches a bulk build.
        let bulk = crate::Engine::build(&values, config).unwrap();
        assert_eq!(
            live.search(&query, 0.5).unwrap(),
            bulk.search(&query, 0.5).unwrap()
        );
    }
}

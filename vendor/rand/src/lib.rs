//! Offline stand-in for the `rand` crate.
//!
//! The build environment has no access to crates.io, so this vendored crate
//! implements exactly the surface the workspace uses: [`rngs::StdRng`],
//! [`SeedableRng::seed_from_u64`], and the [`Rng`] methods `gen::<f64>()`,
//! `gen::<bool>()` and `gen_range` over integer ranges.
//!
//! The generator is xoshiro256** seeded through SplitMix64, so streams are
//! deterministic per seed (the property `ts-data` relies on), statistically
//! solid for synthetic data generation, and cheap. It is **not** the same
//! stream as upstream `rand`'s `StdRng` and is not cryptographically secure.

#![forbid(unsafe_code)]
#![warn(missing_docs)]

/// Types which can be created from a seed.
///
/// Only the `seed_from_u64` entry point is provided; the workspace never
/// seeds from byte arrays.
pub trait SeedableRng: Sized {
    /// Creates a new instance seeded from a single `u64`.
    ///
    /// Equal seeds yield identical streams.
    fn seed_from_u64(state: u64) -> Self;
}

/// A value that can be sampled uniformly from the full output range of an
/// RNG (the subset of upstream's `Standard` distribution we need).
pub trait SampleStandard {
    /// Draws one value from `rng`.
    fn sample<R: Rng + ?Sized>(rng: &mut R) -> Self;
}

impl SampleStandard for f64 {
    /// Uniform in `[0, 1)` with 53 bits of precision.
    fn sample<R: Rng + ?Sized>(rng: &mut R) -> Self {
        (rng.next_u64() >> 11) as f64 * (1.0 / (1u64 << 53) as f64)
    }
}

impl SampleStandard for bool {
    fn sample<R: Rng + ?Sized>(rng: &mut R) -> Self {
        // Use a high bit; low bits of some generators are weaker.
        rng.next_u64() >> 63 == 1
    }
}

impl SampleStandard for u64 {
    fn sample<R: Rng + ?Sized>(rng: &mut R) -> Self {
        rng.next_u64()
    }
}

/// A range that [`Rng::gen_range`] can sample a `T` from uniformly.
///
/// Generic over the output type (like upstream rand) so integer literals in
/// ranges unify with the call site's expected type.
pub trait SampleRange<T> {
    /// Draws one value uniformly from the range.
    ///
    /// # Panics
    /// Panics if the range is empty.
    fn sample_from<R: Rng + ?Sized>(self, rng: &mut R) -> T;
}

/// Rejection-free-enough uniform integer in `[0, bound)` via Lemire's
/// multiply-shift with a single widening multiply. `bound` must be nonzero.
fn uniform_below<R: Rng + ?Sized>(rng: &mut R, bound: u64) -> u64 {
    // Debiased multiply-shift; one retry loop keeps the distribution exact.
    let threshold = bound.wrapping_neg() % bound;
    loop {
        let x = rng.next_u64();
        let m = (x as u128) * (bound as u128);
        if (m as u64) >= threshold {
            return (m >> 64) as u64;
        }
    }
}

macro_rules! impl_sample_range_int {
    ($($t:ty),*) => {$(
        impl SampleRange<$t> for core::ops::Range<$t> {
            fn sample_from<R: Rng + ?Sized>(self, rng: &mut R) -> $t {
                assert!(self.start < self.end, "cannot sample from empty range");
                let span = (self.end as i128 - self.start as i128) as u64;
                self.start.wrapping_add(uniform_below(rng, span) as $t)
            }
        }
        impl SampleRange<$t> for core::ops::RangeInclusive<$t> {
            fn sample_from<R: Rng + ?Sized>(self, rng: &mut R) -> $t {
                let (start, end) = (*self.start(), *self.end());
                assert!(start <= end, "cannot sample from empty range");
                let span = (end as i128 - start as i128) as u128 + 1;
                if span > u64::MAX as u128 {
                    // Whole-domain range: every bit pattern is valid.
                    return rng.next_u64() as $t;
                }
                start.wrapping_add(uniform_below(rng, span as u64) as $t)
            }
        }
    )*};
}

impl_sample_range_int!(usize, u64, u32, i64, i32);

impl SampleRange<f64> for core::ops::Range<f64> {
    fn sample_from<R: Rng + ?Sized>(self, rng: &mut R) -> f64 {
        assert!(self.start < self.end, "cannot sample from empty range");
        let unit = f64::sample(rng);
        let value = self.start + unit * (self.end - self.start);
        // The affine map can round up to exactly `end`; keep the bound
        // exclusive like upstream rand guarantees.
        if value < self.end {
            value
        } else {
            self.end.next_down().max(self.start)
        }
    }
}

/// The user-facing RNG trait: raw output plus the `gen`/`gen_range`
/// conveniences the workspace calls.
pub trait Rng {
    /// Returns the next 64 uniformly random bits.
    fn next_u64(&mut self) -> u64;

    /// Samples a value of type `T` from the standard distribution
    /// (`f64` in `[0, 1)`, fair `bool`, full-range `u64`).
    fn gen<T: SampleStandard>(&mut self) -> T
    where
        Self: Sized,
    {
        T::sample(self)
    }

    /// Samples uniformly from `range`.
    ///
    /// # Panics
    /// Panics if the range is empty.
    fn gen_range<T, Range: SampleRange<T>>(&mut self, range: Range) -> T
    where
        Self: Sized,
    {
        range.sample_from(self)
    }
}

/// Concrete generators.
pub mod rngs {
    use super::{Rng, SeedableRng};

    /// The workspace's standard RNG: xoshiro256** seeded via SplitMix64.
    ///
    /// Deterministic per seed; not a reproduction of upstream `StdRng`'s
    /// (ChaCha12) stream.
    #[derive(Debug, Clone, PartialEq, Eq)]
    pub struct StdRng {
        s: [u64; 4],
    }

    fn splitmix64(state: &mut u64) -> u64 {
        *state = state.wrapping_add(0x9E37_79B9_7F4A_7C15);
        let mut z = *state;
        z = (z ^ (z >> 30)).wrapping_mul(0xBF58_476D_1CE4_E5B9);
        z = (z ^ (z >> 27)).wrapping_mul(0x94D0_49BB_1331_11EB);
        z ^ (z >> 31)
    }

    impl SeedableRng for StdRng {
        fn seed_from_u64(state: u64) -> Self {
            let mut sm = state;
            let s = [
                splitmix64(&mut sm),
                splitmix64(&mut sm),
                splitmix64(&mut sm),
                splitmix64(&mut sm),
            ];
            Self { s }
        }
    }

    impl Rng for StdRng {
        fn next_u64(&mut self) -> u64 {
            // xoshiro256** by Blackman & Vigna (public domain reference).
            let result = self.s[1].wrapping_mul(5).rotate_left(7).wrapping_mul(9);
            let t = self.s[1] << 17;
            self.s[2] ^= self.s[0];
            self.s[3] ^= self.s[1];
            self.s[1] ^= self.s[2];
            self.s[0] ^= self.s[3];
            self.s[2] ^= t;
            self.s[3] = self.s[3].rotate_left(45);
            result
        }
    }
}

#[cfg(test)]
mod tests {
    use super::rngs::StdRng;
    use super::{Rng, SeedableRng};

    #[test]
    fn equal_seeds_equal_streams() {
        let mut a = StdRng::seed_from_u64(42);
        let mut b = StdRng::seed_from_u64(42);
        for _ in 0..64 {
            assert_eq!(a.next_u64(), b.next_u64());
        }
    }

    #[test]
    fn different_seeds_differ() {
        let mut a = StdRng::seed_from_u64(1);
        let mut b = StdRng::seed_from_u64(2);
        let same = (0..16).filter(|_| a.next_u64() == b.next_u64()).count();
        assert!(same < 2);
    }

    #[test]
    fn unit_f64_in_range() {
        let mut rng = StdRng::seed_from_u64(7);
        for _ in 0..1_000 {
            let x: f64 = rng.gen();
            assert!((0.0..1.0).contains(&x));
        }
    }

    #[test]
    fn gen_range_respects_bounds() {
        let mut rng = StdRng::seed_from_u64(9);
        for _ in 0..1_000 {
            let v = rng.gen_range(50..400);
            assert!((50..400).contains(&v));
            let w = rng.gen_range(0..=10usize);
            assert!(w <= 10);
        }
        // Degenerate inclusive range must not panic.
        assert_eq!(rng.gen_range(3..=3usize), 3);
    }

    #[test]
    fn bool_is_roughly_fair() {
        let mut rng = StdRng::seed_from_u64(11);
        let trues = (0..10_000).filter(|_| rng.gen::<bool>()).count();
        assert!((4_000..6_000).contains(&trues), "trues = {trues}");
    }
}

//! Figure 8: (a) memory footprint and (b) build time of each index on each
//! dataset (default parameters, whole-series z-normalisation).
//!
//! Besides the printed table, the run emits a machine-readable
//! `BENCH_fig8.json` with the per-method memory and build-time numbers.

use ts_bench::json::{write_bench_json, JsonValue};
use ts_bench::{generate, HarnessOptions};
use twin_search::{Dataset, Engine, EngineConfig, Method, Normalization};

fn main() {
    let options = HarnessOptions::from_args();
    let normalization = Normalization::WholeSeries;
    let len = 100;

    println!("== Figure 8: index memory footprint and build time ==");
    println!(
        "{:<8} {:<11} {:>14} {:>16}",
        "dataset", "method", "memory (MiB)", "build time (s)"
    );
    let mut rows = Vec::new();
    for dataset in Dataset::ALL {
        let series = generate(dataset, &options);
        for method in Method::INDEXED {
            let config = EngineConfig::new(method, len)
                .with_normalization(normalization)
                .with_disk_backing(true);
            let engine = Engine::build(&series, config).expect("valid series");
            println!(
                "{:<8} {:<11} {:>14.2} {:>16.3}",
                dataset.name(),
                method.name(),
                engine.index_memory_bytes() as f64 / (1024.0 * 1024.0),
                engine.build_time().as_secs_f64(),
            );
            rows.push(JsonValue::obj(vec![
                ("dataset", JsonValue::Str(dataset.name().to_string())),
                ("method", JsonValue::Str(method.name().to_string())),
                ("series_len", JsonValue::Int(series.len() as u64)),
                (
                    "memory_bytes",
                    JsonValue::Int(engine.index_memory_bytes() as u64),
                ),
                (
                    "build_seconds",
                    JsonValue::Num(engine.build_time().as_secs_f64()),
                ),
            ]));
        }
    }
    let report = JsonValue::obj(vec![
        ("figure", JsonValue::Str("fig8".into())),
        (
            "title",
            JsonValue::Str("index memory footprint and build time".into()),
        ),
        ("scale", JsonValue::Int(options.scale as u64)),
        ("rows", JsonValue::Arr(rows)),
    ]);
    match write_bench_json("fig8", &report) {
        Ok(path) => println!("\nwrote {}", path.display()),
        Err(e) => eprintln!("warning: could not write BENCH_fig8.json: {e}"),
    }
    println!();
    println!("expected shape (paper Fig. 8): KV-Index smallest and fastest to build; iSAX 2-3x smaller than TS-Index in memory; iSAX slowest to build; all indices fit in main memory.");
}

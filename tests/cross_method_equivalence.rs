//! Cross-crate integration tests: every search method must return exactly the
//! same twin set as the brute-force sweepline, for every dataset shape,
//! normalisation regime and threshold in the paper's grids (scaled down).

use twin_search::{Engine, EngineConfig, Method, Normalization, QueryWorkload, SeriesStore};

use ts_data::generators::{eeg_like, insect_like, GeneratorConfig};

fn datasets() -> Vec<(&'static str, Vec<f64>)> {
    vec![
        ("insect-like", insect_like(GeneratorConfig::new(3_000, 101))),
        ("eeg-like", eeg_like(GeneratorConfig::new(3_000, 202))),
    ]
}

/// Builds one engine per method over the same data and checks that all
/// methods return the same result for each (query, epsilon) pair.
fn assert_all_methods_agree(
    name: &str,
    values: &[f64],
    len: usize,
    normalization: Normalization,
    epsilons: &[f64],
) {
    let methods: Vec<Method> = Method::ALL
        .iter()
        .copied()
        .filter(|m| {
            normalization != Normalization::PerSubsequence
                || m.supports_per_subsequence_normalization()
        })
        .collect();
    let engines: Vec<Engine> = methods
        .iter()
        .map(|&m| {
            Engine::build(
                values,
                EngineConfig::new(m, len)
                    .with_normalization(normalization)
                    // Small capacities force deep trees even on small data.
                    .with_isax_leaf_capacity(64)
                    .with_tsindex_capacities(4, 12),
            )
            .unwrap()
        })
        .collect();

    let workload = QueryWorkload::sample(engines[0].store(), len, 5, 42, normalization).unwrap();
    for (qi, query) in workload.iter().enumerate() {
        for &eps in epsilons {
            let expected = engines[0].search(query, eps).unwrap();
            for engine in &engines[1..] {
                let got = engine.search(query, eps).unwrap();
                assert_eq!(
                    got,
                    expected,
                    "{name}: {} disagrees with {} (query {qi}, eps {eps}, norm {normalization:?})",
                    engine.method(),
                    engines[0].method(),
                );
            }
        }
    }
}

#[test]
fn whole_series_normalization_all_methods_agree() {
    for (name, values) in datasets() {
        assert_all_methods_agree(
            name,
            &values,
            100,
            Normalization::WholeSeries,
            &[0.3, 0.8, 1.5],
        );
    }
}

#[test]
fn per_subsequence_normalization_methods_agree() {
    for (name, values) in datasets() {
        assert_all_methods_agree(
            name,
            &values,
            100,
            Normalization::PerSubsequence,
            &[0.2, 0.5],
        );
    }
}

#[test]
fn raw_values_all_methods_agree() {
    for (name, values) in datasets() {
        assert_all_methods_agree(name, &values, 100, Normalization::None, &[0.5, 2.0]);
    }
}

#[test]
fn varying_subsequence_length_methods_agree() {
    let values = insect_like(GeneratorConfig::new(2_500, 77));
    for len in [50usize, 150, 250] {
        assert_all_methods_agree(
            "insect-like",
            &values,
            len,
            Normalization::WholeSeries,
            &[1.0],
        );
    }
}

#[test]
fn every_reported_match_is_a_true_twin_and_none_is_missed() {
    // Verify soundness and completeness directly against the definition.
    let values = eeg_like(GeneratorConfig::new(2_000, 5));
    let len = 100;
    let eps = 0.4;
    let engine = Engine::build(
        &values,
        EngineConfig::new(Method::TsIndex, len).with_tsindex_capacities(4, 12),
    )
    .unwrap();
    let store = engine.store();
    let query = store.read(987, len).unwrap();
    let hits = engine.search(&query, eps).unwrap();
    // Soundness.
    for &p in &hits {
        let cand = store.read(p, len).unwrap();
        assert!(twin_search::are_twins(&query, &cand, eps));
    }
    // Completeness.
    for p in 0..store.subsequence_count(len) {
        let cand = store.read(p, len).unwrap();
        if twin_search::are_twins(&query, &cand, eps) {
            assert!(hits.binary_search(&p).is_ok(), "missing twin at {p}");
        }
    }
}

#[test]
fn trivial_and_adversarial_queries() {
    let values = insect_like(GeneratorConfig::new(1_500, 9));
    let len = 60;
    let engines: Vec<Engine> = Method::ALL
        .iter()
        .map(|&m| {
            Engine::build(
                &values,
                EngineConfig::new(m, len)
                    .with_isax_leaf_capacity(32)
                    .with_tsindex_capacities(3, 8),
            )
            .unwrap()
        })
        .collect();
    let store = engines[0].store();
    let n_sub = store.subsequence_count(len);

    // A constant query far away from the (z-normalised) data: no matches.
    let far = vec![50.0; len];
    // A huge threshold: everything matches.
    let some_query = store.read(10, len).unwrap();
    for engine in &engines {
        assert!(
            engine.search(&far, 0.5).unwrap().is_empty(),
            "{}",
            engine.method()
        );
        assert_eq!(
            engine.search(&some_query, 1e9).unwrap().len(),
            n_sub,
            "{}",
            engine.method()
        );
        // Zero threshold still finds the query itself.
        assert!(engine.search(&some_query, 0.0).unwrap().contains(&10));
    }
}
